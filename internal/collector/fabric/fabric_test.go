// End-to-end fabric tests: a real multi-shard collector fabric — ingest
// routed by the slot ring, rebalances driven by the coordinator, queries
// merged across shards — audited for the exactly-once invariant with the
// oracle's multiset comparison. The chaos scenarios add membership churn
// under load, a one-way partition mid-ingest, and a SIGKILLed shard
// mid-rebalance (a re-executed child process, as in the collector's
// kill-recover harness). The file lives in an external package so it can
// use the oracle, which imports fabric for AuditFabric.
package fabric_test

import (
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"sync"
	"testing"
	"time"

	"netseer/internal/collector"
	"netseer/internal/collector/fabric"
	"netseer/internal/collector/wal"
	"netseer/internal/faultconn"
	"netseer/internal/fevent"
	"netseer/internal/obs/trace"
	"netseer/internal/oracle"
	"netseer/internal/pkt"
	"netseer/internal/sim"
)

// TestMain routes the re-executed binary into the shard child when the
// harness env var is set; otherwise it runs the tests normally.
func TestMain(m *testing.M) {
	if os.Getenv("NETSEER_FABRIC_CHILD") == "1" {
		childMain()
		return
	}
	os.Exit(m.Run())
}

// childMain is one life of a shard node: recover from the WAL in the
// harness directory, serve on the fixed addresses, and run until
// SIGKILLed. The bind retries because the previous life's listeners may
// linger briefly after the kill.
func childMain() {
	id, _ := strconv.ParseUint(os.Getenv("NETSEER_FABRIC_ID"), 10, 32)
	delayMs, _ := strconv.Atoi(os.Getenv("NETSEER_FABRIC_STAGE_DELAY_MS"))
	opts := fabric.ShardOptions{
		ID:         uint32(id),
		Dir:        os.Getenv("NETSEER_FABRIC_DIR"),
		IngestAddr: os.Getenv("NETSEER_FABRIC_INGEST"),
		QueryAddr:  os.Getenv("NETSEER_FABRIC_QUERY"),
		AdminAddr:  os.Getenv("NETSEER_FABRIC_ADMIN"),
		StageDelay: time.Duration(delayMs) * time.Millisecond,
	}
	for i := 0; ; i++ {
		if _, err := fabric.StartShard(opts); err == nil {
			break
		} else if i > 600 {
			fmt.Fprintf(os.Stderr, "fabric child: %v\n", err)
			os.Exit(1)
		}
		time.Sleep(5 * time.Millisecond)
	}
	select {} // run until SIGKILLed
}

// startShard starts an in-process shard with an unsynced WAL (these
// tests crash child processes, not the parent).
func startShard(t *testing.T, id uint32, dir string) *fabric.ShardNode {
	t.Helper()
	n, err := fabric.StartShard(fabric.ShardOptions{
		ID: id, Dir: dir,
		IngestAddr: "127.0.0.1:0", QueryAddr: "127.0.0.1:0", AdminAddr: "127.0.0.1:0",
		WAL: wal.Options{NoSync: true},
	})
	if err != nil {
		t.Fatalf("start shard %d: %v", id, err)
	}
	return n
}

func startCoordinator(t *testing.T, statePath string, bootstrap []fabric.ShardInfo, opTimeout time.Duration) *fabric.Coordinator {
	t.Helper()
	c, err := fabric.StartCoordinator(fabric.CoordinatorOptions{
		StatePath: statePath, ListenAddr: "127.0.0.1:0",
		Bootstrap: bootstrap, OpTimeout: opTimeout,
	})
	if err != nil {
		t.Fatalf("start coordinator: %v", err)
	}
	return c
}

// eventN builds an event with a globally unique wire identity: distinct
// flows spread load across slots and keep the multiset audit sharp.
func eventN(i int, sw uint16, ts sim.Time) fevent.Event {
	flow := pkt.FlowKey{
		SrcIP: pkt.IP(10, byte(i>>16), byte(i>>8), byte(i)), DstIP: pkt.IP(192, 168, 0, 1),
		SrcPort: uint16(i), DstPort: 443, Proto: 6,
	}
	return fevent.Event{
		Type: fevent.TypeDrop, Flow: flow, DropCode: fevent.DropNoRoute,
		SwitchID: sw, Timestamp: ts, IngressPort: 1, EgressPort: 2,
		Count: uint16(i%60000) + 1,
	}
}

// loadState generates routed load and remembers every delivered event as
// the audit reference.
type loadState struct {
	mu   sync.Mutex
	ref  []fevent.Event
	next int
}

func (ls *loadState) deliver(r *fabric.Router, batches, perBatch int) {
	for b := 0; b < batches; b++ {
		ls.mu.Lock()
		start := ls.next
		ls.next += perBatch
		ls.mu.Unlock()
		sw := uint16(start%5 + 1)
		ts := sim.Time(1000 + start)
		evs := make([]fevent.Event, perBatch)
		for i := range evs {
			evs[i] = eventN(start+i, sw, ts)
		}
		r.Deliver(&fevent.Batch{SwitchID: sw, Timestamp: ts, Events: evs})
		ls.mu.Lock()
		ls.ref = append(ls.ref, evs...)
		ls.mu.Unlock()
	}
}

func (ls *loadState) reference() []fevent.Event {
	ls.mu.Lock()
	defer ls.mu.Unlock()
	return append([]fevent.Event(nil), ls.ref...)
}

// audit fails the test on any exactly-once violation fabric-wide.
func audit(t *testing.T, ls *loadState, cfg fabric.Config) fabric.MergedResult {
	t.Helper()
	res := fabric.FanOutQuery(cfg, "", 10*time.Second)
	if diffs := oracle.AuditFabric(ls.reference(), res, 10); len(diffs) != 0 {
		t.Fatalf("exactly-once violated (%d diffs):\n%s", len(diffs), diffs[0])
	}
	return res
}

func waitResolved(t *testing.T, c *fabric.Coordinator, within time.Duration) {
	t.Helper()
	deadline := time.Now().Add(within)
	for !c.Resolved() {
		if time.Now().After(deadline) {
			t.Fatalf("coordinator did not resolve its pending rebalance within %v", within)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func TestFabricExactlyOnceSteadyState(t *testing.T) {
	base := t.TempDir()
	var infos []fabric.ShardInfo
	for id := uint32(1); id <= 3; id++ {
		n := startShard(t, id, filepath.Join(base, fmt.Sprintf("s%d", id)))
		defer n.Close()
		infos = append(infos, n.Info())
	}
	coord := startCoordinator(t, filepath.Join(base, "coord.json"), infos, 5*time.Second)
	defer coord.Close()

	cfg, err := fabric.FetchConfig(coord.Addr(), 5*time.Second)
	if err != nil {
		t.Fatalf("fetch config: %v", err)
	}
	if cfg.Epoch != 1 || len(cfg.Shards) != 3 {
		t.Fatalf("bootstrap config epoch=%d shards=%d, want 1/3", cfg.Epoch, len(cfg.Shards))
	}

	r := fabric.NewRouter(cfg, collector.ClientConfig{MaxQueue: 8192})
	defer r.Close()
	ls := &loadState{}
	ls.deliver(r, 300, 8)
	if err := r.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}

	res := audit(t, ls, cfg)
	if res.Partial || res.ShardsOK != 3 {
		t.Fatalf("full fan-out reported partial=%v ok=%d", res.Partial, res.ShardsOK)
	}

	// A filtered fan-out stays scoped and merged.
	bySwitch := fabric.FanOutQuery(cfg, "switch=3", 10*time.Second)
	want := 0
	for _, e := range ls.reference() {
		if e.SwitchID == 3 {
			want++
		}
	}
	if len(bySwitch.Events) != want {
		t.Fatalf("switch=3 fan-out returned %d events, reference has %d", len(bySwitch.Events), want)
	}
	for _, e := range bySwitch.Events {
		if e.SwitchID != 3 {
			t.Fatalf("switch=3 fan-out leaked an event from switch %d", e.SwitchID)
		}
	}
}

func TestFanOutPartialOnUnreachableShard(t *testing.T) {
	base := t.TempDir()
	a := startShard(t, 1, filepath.Join(base, "s1"))
	defer a.Close()
	b := startShard(t, 2, filepath.Join(base, "s2"))
	shards := []fabric.ShardInfo{a.Info(), b.Info()}
	cfg := fabric.Config{Epoch: 1, Shards: shards, Slots: fabric.AssignSlots(shards)}

	r := fabric.NewRouter(cfg, collector.ClientConfig{})
	defer r.Close()
	ls := &loadState{}
	ls.deliver(r, 60, 5)
	if err := r.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	b.Close()

	res := fabric.FanOutQuery(cfg, "", 2*time.Second)
	if !res.Partial || res.ShardsOK != 1 {
		t.Fatalf("fan-out with a dead shard: partial=%v ok=%d, want partial 1/2", res.Partial, res.ShardsOK)
	}
	diffs := oracle.AuditFabric(ls.reference(), res, 10)
	if len(diffs) == 0 {
		t.Fatal("oracle passed a partial fan-out silently")
	}
}

func TestShardAddUnderLoad(t *testing.T) {
	base := t.TempDir()
	a := startShard(t, 1, filepath.Join(base, "s1"))
	defer a.Close()
	b := startShard(t, 2, filepath.Join(base, "s2"))
	defer b.Close()
	coord := startCoordinator(t, filepath.Join(base, "coord.json"),
		[]fabric.ShardInfo{a.Info(), b.Info()}, 5*time.Second)
	defer coord.Close()

	r := fabric.NewRouter(coord.Config(), collector.ClientConfig{MaxQueue: 8192})
	defer r.Close()
	r.WatchCoordinator(coord.Addr(), 25*time.Millisecond)

	ls := &loadState{}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				ls.deliver(r, 5, 6)
				time.Sleep(2 * time.Millisecond)
			}
		}
	}()

	time.Sleep(50 * time.Millisecond)
	c := startShard(t, 3, filepath.Join(base, "s3"))
	defer c.Close()
	cfg2, err := coord.Join(c.Info())
	if err != nil {
		t.Fatalf("join under load: %v", err)
	}
	if cfg2.Epoch != 2 {
		t.Fatalf("join published epoch %d, want 2", cfg2.Epoch)
	}

	// The watcher picks the new epoch up on its own.
	deadline := time.Now().Add(5 * time.Second)
	for r.Epoch() != cfg2.Epoch {
		if time.Now().After(deadline) {
			t.Fatal("router never applied the published epoch via WatchCoordinator")
		}
		time.Sleep(10 * time.Millisecond)
	}
	time.Sleep(50 * time.Millisecond) // churn after the cutover too
	close(stop)
	wg.Wait()
	if err := r.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}

	res := audit(t, ls, cfg2)
	if res.ShardsOK != 3 {
		t.Fatalf("fan-out reached %d/3 shards", res.ShardsOK)
	}
	if got := len(c.Store().Query(collector.Filter{})); got == 0 {
		t.Fatal("joined shard holds no events — the rebalance moved nothing")
	}
}

func TestShardLeaveRetireUnderLoad(t *testing.T) {
	base := t.TempDir()
	var nodes []*fabric.ShardNode
	var infos []fabric.ShardInfo
	for id := uint32(1); id <= 3; id++ {
		n := startShard(t, id, filepath.Join(base, fmt.Sprintf("s%d", id)))
		defer n.Close()
		nodes = append(nodes, n)
		infos = append(infos, n.Info())
	}
	coord := startCoordinator(t, filepath.Join(base, "coord.json"), infos, 5*time.Second)
	defer coord.Close()

	r := fabric.NewRouter(coord.Config(), collector.ClientConfig{MaxQueue: 8192})
	defer r.Close()

	// Retiring an undemoted shard must be refused: it still owns slots.
	if _, err := coord.Retire(3); err == nil {
		t.Fatal("retire of an undemoted shard succeeded")
	}

	ls := &loadState{}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				ls.deliver(r, 5, 6)
				time.Sleep(2 * time.Millisecond)
			}
		}
	}()

	time.Sleep(50 * time.Millisecond)
	cfg2, err := coord.Leave(3)
	if err != nil {
		t.Fatalf("leave under load: %v", err)
	}
	if _, ok := cfg2.Shard(3); !ok {
		t.Fatal("demotion epoch dropped shard 3 from membership — late arrivals would strand")
	}
	for slot := 0; slot < fabric.NSlots; slot++ {
		if cfg2.Slots[slot] == 3 {
			t.Fatalf("demoted shard still owns slot %d", slot)
		}
	}
	r.ApplyConfig(cfg2)
	time.Sleep(50 * time.Millisecond) // load keeps flowing, none of it to shard 3
	close(stop)
	wg.Wait()
	if err := r.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}

	cfg3, err := coord.Retire(3)
	if err != nil {
		t.Fatalf("retire: %v", err)
	}
	if _, ok := cfg3.Shard(3); ok {
		t.Fatal("retire epoch still lists shard 3")
	}
	r.ApplyConfig(cfg3)

	if got := len(nodes[2].Store().Query(collector.Filter{})); got != 0 {
		t.Fatalf("retired shard still holds %d events — the drain stranded them", got)
	}
	nodes[2].Close()
	res := audit(t, ls, cfg3)
	if res.Partial {
		t.Fatal("fan-out after retire still depends on the removed shard")
	}
}

func TestAsymmetricPartitionDuringIngest(t *testing.T) {
	base := t.TempDir()
	a := startShard(t, 1, filepath.Join(base, "s1"))
	defer a.Close()

	// Shard 2's ingest wire drops the exporter→shard direction 50ms in,
	// healing 300ms later — acks keep flowing out, frames stall in.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	fln := faultconn.Wrap(ln, faultconn.Config{
		PartitionDir:   faultconn.Inbound,
		PartitionAfter: 50 * time.Millisecond,
		PartitionFor:   300 * time.Millisecond,
	})
	b, err := fabric.StartShard(fabric.ShardOptions{
		ID: 2, Dir: filepath.Join(base, "s2"),
		IngestListener: fln,
		QueryAddr:      "127.0.0.1:0", AdminAddr: "127.0.0.1:0",
		WAL: wal.Options{NoSync: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	shards := []fabric.ShardInfo{a.Info(), b.Info()}
	cfg := fabric.Config{Epoch: 1, Shards: shards, Slots: fabric.AssignSlots(shards)}
	r := fabric.NewRouter(cfg, collector.ClientConfig{MaxQueue: 8192})
	defer r.Close()

	ls := &loadState{}
	for i := 0; i < 40; i++ {
		ls.deliver(r, 5, 5)
		time.Sleep(10 * time.Millisecond) // spans the partition window
	}
	if err := r.Flush(); err != nil {
		t.Fatalf("flush across the partition: %v", err)
	}
	res := audit(t, ls, cfg)
	if res.Partial {
		t.Fatal("fan-out partial after the partition healed")
	}
}

// pickAddr reserves a port for the child by binding and releasing it.
func pickAddr(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

func spawnChild(t *testing.T, dir string, id uint32, ingest, query, admin string, stageDelay time.Duration) *exec.Cmd {
	t.Helper()
	cmd := exec.Command(os.Args[0], "-test.run=NONE")
	cmd.Env = append(os.Environ(),
		"NETSEER_FABRIC_CHILD=1",
		"NETSEER_FABRIC_DIR="+dir,
		"NETSEER_FABRIC_ID="+strconv.Itoa(int(id)),
		"NETSEER_FABRIC_INGEST="+ingest,
		"NETSEER_FABRIC_QUERY="+query,
		"NETSEER_FABRIC_ADMIN="+admin,
		"NETSEER_FABRIC_STAGE_DELAY_MS="+strconv.Itoa(int(stageDelay/time.Millisecond)),
	)
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatalf("spawn shard child: %v", err)
	}
	return cmd
}

func waitDial(t *testing.T, addr string, within time.Duration) {
	t.Helper()
	deadline := time.Now().Add(within)
	for {
		c, err := net.DialTimeout("tcp", addr, 250*time.Millisecond)
		if err == nil {
			c.Close()
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("%s not reachable within %v: %v", addr, within, err)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestShardSIGKILLMidRebalance kills a real joining shard process while
// the coordinator is shipping it slot ranges, then asserts the fabric
// resolves — the kill aborts the rebalance, the old epoch stands, and a
// retried join lands cleanly — with exactly-once holding at every step.
func TestShardSIGKILLMidRebalance(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns and kills child processes")
	}
	base := t.TempDir()
	a := startShard(t, 1, filepath.Join(base, "s1"))
	defer a.Close()
	b := startShard(t, 2, filepath.Join(base, "s2"))
	defer b.Close()
	coord := startCoordinator(t, filepath.Join(base, "coord.json"),
		[]fabric.ShardInfo{a.Info(), b.Info()}, time.Second)
	defer coord.Close()

	r := fabric.NewRouter(coord.Config(), collector.ClientConfig{MaxQueue: 8192})
	defer r.Close()
	ls := &loadState{}
	ls.deliver(r, 150, 6)
	if err := r.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}

	childDir := filepath.Join(base, "s3")
	ingest, query, admin := pickAddr(t), pickAddr(t), pickAddr(t)
	info3 := fabric.ShardInfo{ID: 3, Ingest: []string{ingest}, Query: query, Admin: admin}

	// First life: the import handler holds its reply 500ms after the
	// handoff went durable, so the kill lands mid-rebalance.
	child := spawnChild(t, childDir, 3, ingest, query, admin, 500*time.Millisecond)
	waitDial(t, admin, 10*time.Second)

	joinErr := make(chan error, 1)
	go func() {
		_, err := coord.Join(info3)
		joinErr <- err
	}()
	time.Sleep(250 * time.Millisecond)
	child.Process.Kill()
	child.Wait()
	err := <-joinErr

	// Second life: same directory, same addresses, no stage delay.
	child = spawnChild(t, childDir, 3, ingest, query, admin, 0)
	defer func() {
		child.Process.Kill()
		child.Wait()
	}()
	waitDial(t, admin, 10*time.Second)
	waitResolved(t, coord, 20*time.Second)

	cfg := coord.Config()
	if err != nil {
		// The usual path: the kill failed the join, the abort resolved
		// once the shard came back, and epoch 1 stands.
		if _, ok := cfg.Shard(3); ok {
			t.Fatal("aborted join left shard 3 in membership")
		}
		audit(t, ls, cfg)
		if cfg, err = coord.Join(info3); err != nil {
			t.Fatalf("retried join after recovery: %v", err)
		}
	} else if _, ok := cfg.Shard(3); !ok {
		t.Fatal("join reported success but shard 3 is not a member")
	}

	r.ApplyConfig(cfg)
	ls.deliver(r, 100, 6)
	if err := r.Flush(); err != nil {
		t.Fatalf("flush after recovery: %v", err)
	}
	res := audit(t, ls, cfg)
	if res.Partial || res.ShardsOK != 3 {
		t.Fatalf("final fan-out partial=%v ok=%d, want full 3/3", res.Partial, res.ShardsOK)
	}

	// The recovered 3-shard fabric must still trace end to end: one
	// sampled batch delivered across it assembles — spans pulled from
	// the in-process shards and the re-executed child alike — with the
	// full exporter→shard→WAL-fsync→store chain in monotonic order.
	trace.SetSampleEvery(1)
	defer trace.SetSampleEvery(trace.DefaultSampleEvery)
	evs := make([]fevent.Event, 9)
	for i := range evs {
		evs[i] = eventN(900000+i, 2, 3000)
	}
	tb := tracedBatch(t, 2, 77, 3000, evs)
	id := tb.Trace.TraceID
	r.Deliver(tb)
	if err := r.Flush(); err != nil {
		t.Fatalf("flush of traced batch: %v", err)
	}
	tr := fabric.FanOutTrace(cfg, id, nil, 10*time.Second)
	if tr.Partial {
		t.Fatalf("trace assembly partial (%d/%d shards)", tr.ShardsOK, tr.ShardsTotal)
	}
	stages := make(map[string]bool)
	for _, j := range tr.Spans {
		stages[j.Stage] = true
	}
	for _, st := range []trace.Stage{trace.StageBatcher, trace.StageExportEnqueue,
		trace.StageIngest, trace.StageWALFsync, trace.StageStoreIndex} {
		if !stages[st.String()] {
			t.Errorf("post-recovery trace misses the %s hop: %v", st, stages)
		}
	}
	for i := 1; i < len(tr.Spans); i++ {
		if tr.Spans[i].Start < tr.Spans[i-1].Start {
			t.Fatalf("span starts not monotonic after recovery: %s at %d after %s at %d",
				tr.Spans[i].Stage, tr.Spans[i].Start, tr.Spans[i-1].Stage, tr.Spans[i-1].Start)
		}
	}

	// The fleet plane over the same fabric: healthy with all three
	// members up, unhealthy — with the dead member's row kept as the
	// signal — the moment the child is SIGKILLed again.
	rep := coord.FleetStatus(5 * time.Second)
	if !rep.Healthy {
		t.Fatalf("recovered fabric reported unhealthy: %+v", rep)
	}
	child.Process.Kill()
	child.Wait()
	rep = coord.FleetStatus(2 * time.Second)
	if rep.Healthy {
		t.Fatal("fleet reported healthy with shard 3 SIGKILLed")
	}
	var deadRow *fabric.FleetShard
	for i := range rep.Shards {
		if rep.Shards[i].ID == 3 {
			deadRow = &rep.Shards[i]
		}
	}
	if deadRow == nil || deadRow.Alive {
		t.Fatalf("fleet does not reflect the dead shard: %+v", rep.Shards)
	}
}
