package fabric

import (
	"encoding/binary"
	"fmt"

	"netseer/internal/collector"
	"netseer/internal/fevent"
)

// WAL record envelope. A shard's log interleaves ingested batch frames
// with rebalance bookkeeping, discriminated by a one-byte tag so replay
// reconstructs both the store and any rebalance that was open at the
// crash:
//
//	'B' | frame payload            — ingested batch (seq + batch body)
//	'M' | rb (8 B) | mask (8 B)    — handoff mark: opens transfer rb on
//	                                 the source; the capture follows as
//	                                 chunks and is sealed by the commit
//	'I' | rb (8 B) | kind | body   — transfer chunk ('S' seen set, 'E'
//	                                 wire events); buffered until commit
//	'C' | rb (8 B)                 — commit: seal rb's chunks — a source
//	                                 capture if an 'M' opened rb here, a
//	                                 destination import otherwise
//	'F' | rb (8 B)                 — fence: remove rb's captured multiset
//	'R' | rb (8 B)                 — release: forget rb, keep the events
//
// rb identifies one transfer (the coordinator derives it from the target
// epoch and the transfer's index, so a node is either source or
// destination for a given rb, never both). The mark's capture is logged
// verbatim rather than recomputed at replay: recomputation would diverge
// whenever a shed batch sits below the mark (indexed by replay, absent
// from the live store when the capture ran). A mark whose commit is
// missing — crash mid-capture — is discarded whole at replay and the
// coordinator's retry starts it over. Checkpoints are refused while any
// rb is open, so a mark can never sink below a snapshot without its
// closing fence/release.
const (
	recBatch   = 'B'
	recMark    = 'M'
	recImport  = 'I'
	recCommit  = 'C'
	recFence   = 'F'
	recRelease = 'R'
)

// Import chunk kinds.
const (
	chunkSeen   = 'S'
	chunkEvents = 'E'
)

// encodeBatchRecord wraps one ingest frame payload — this is the
// ServerConfig.WALEncode hook a ShardNode installs.
func encodeBatchRecord(payload []byte) []byte {
	out := make([]byte, 1+len(payload))
	out[0] = recBatch
	copy(out[1:], payload)
	return out
}

func encodeMark(rb, mask uint64) []byte {
	out := make([]byte, 17)
	out[0] = recMark
	binary.BigEndian.PutUint64(out[1:9], rb)
	binary.BigEndian.PutUint64(out[9:17], mask)
	return out
}

func encodeRB(tag byte, rb uint64) []byte {
	out := make([]byte, 9)
	out[0] = tag
	binary.BigEndian.PutUint64(out[1:9], rb)
	return out
}

func encodeImportChunk(rb uint64, kind byte, body []byte) []byte {
	out := make([]byte, 10+len(body))
	out[0] = recImport
	binary.BigEndian.PutUint64(out[1:9], rb)
	out[9] = kind
	copy(out[10:], body)
	return out
}

// encodeSeenSet flattens a (switch, seq) dedup set: 10 bytes per entry.
func encodeSeenSet(ids []collector.BatchID) []byte {
	out := make([]byte, 0, len(ids)*10)
	for _, id := range ids {
		out = binary.BigEndian.AppendUint16(out, id.Switch)
		out = binary.BigEndian.AppendUint64(out, id.Seq)
	}
	return out
}

func decodeSeenSet(b []byte) ([]collector.BatchID, error) {
	if len(b)%10 != 0 {
		return nil, fmt.Errorf("fabric: seen set of %d bytes not a multiple of 10", len(b))
	}
	out := make([]collector.BatchID, 0, len(b)/10)
	for len(b) > 0 {
		out = append(out, collector.BatchID{
			Switch: binary.BigEndian.Uint16(b[0:2]),
			Seq:    binary.BigEndian.Uint64(b[2:10]),
		})
		b = b[10:]
	}
	return out, nil
}

// encodeEvents flattens events into back-to-back 34-byte wire encodings.
func encodeEvents(evs []fevent.Event) []byte {
	out := make([]byte, 0, len(evs)*collector.WireEventLen)
	for i := range evs {
		out = collector.AppendWireEvent(out, &evs[i])
	}
	return out
}

func decodeEvents(b []byte) ([]fevent.Event, error) {
	if len(b)%collector.WireEventLen != 0 {
		return nil, fmt.Errorf("fabric: event blob of %d bytes not a multiple of %d", len(b), collector.WireEventLen)
	}
	out := make([]fevent.Event, 0, len(b)/collector.WireEventLen)
	for len(b) > 0 {
		e, err := collector.DecodeWireEvent(b)
		if err != nil {
			return nil, err
		}
		out = append(out, e)
		b = b[collector.WireEventLen:]
	}
	return out, nil
}

// slotMaskHas reports whether slot is set in the mask.
func slotMaskHas(mask uint64, slot int) bool { return mask&(1<<uint(slot)) != 0 }
