package fabric

import (
	"bytes"
	"testing"

	"netseer/internal/collector"
	"netseer/internal/fevent"
	"netseer/internal/pkt"
	"netseer/internal/sim"
)

func testEvents() []fevent.Event {
	mk := func(i int) pkt.FlowKey {
		return pkt.FlowKey{SrcIP: pkt.IP(10, 0, 0, byte(i)), DstIP: pkt.IP(10, 1, 0, 1),
			SrcPort: uint16(1000 + i), DstPort: 80, Proto: 6}
	}
	return []fevent.Event{
		{Type: fevent.TypeDrop, Flow: mk(1), DropCode: fevent.DropNoRoute,
			SwitchID: 3, Timestamp: sim.Time(100), IngressPort: 1, EgressPort: 2, Count: 4},
		{Type: fevent.TypeCongestion, Flow: mk(2), SwitchID: 5, Timestamp: sim.Time(200),
			EgressPort: 7, Queue: 1, QueueLatencyUs: 900, Count: 1},
		{Type: fevent.TypePathChange, Flow: mk(3), SwitchID: 3, Timestamp: sim.Time(300),
			IngressPort: 2, EgressPort: 9},
	}
}

func TestEventBlobRoundtrip(t *testing.T) {
	evs := testEvents()
	blob := encodeEvents(evs)
	if len(blob) != len(evs)*collector.WireEventLen {
		t.Fatalf("blob is %d bytes, want %d", len(blob), len(evs)*collector.WireEventLen)
	}
	got, err := decodeEvents(blob)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(got) != len(evs) {
		t.Fatalf("decoded %d events, want %d", len(got), len(evs))
	}
	for i := range evs {
		want := collector.AppendWireEvent(nil, &evs[i])
		back := collector.AppendWireEvent(nil, &got[i])
		if !bytes.Equal(want, back) {
			t.Fatalf("event %d identity changed across roundtrip:\n%x\n%x", i, want, back)
		}
	}
	if _, err := decodeEvents(blob[:len(blob)-1]); err == nil {
		t.Fatal("truncated event blob decoded without error")
	}
}

func TestSeenSetRoundtrip(t *testing.T) {
	ids := []collector.BatchID{{Switch: 1, Seq: 7}, {Switch: 65535, Seq: 1 << 60}, {Switch: 0, Seq: 0}}
	got, err := decodeSeenSet(encodeSeenSet(ids))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(got) != len(ids) {
		t.Fatalf("decoded %d ids, want %d", len(got), len(ids))
	}
	for i := range ids {
		if got[i] != ids[i] {
			t.Fatalf("id %d: got %+v want %+v", i, got[i], ids[i])
		}
	}
	if _, err := decodeSeenSet([]byte{1, 2, 3}); err == nil {
		t.Fatal("ragged seen set decoded without error")
	}
}

func TestRecordFraming(t *testing.T) {
	if rec := encodeBatchRecord([]byte("payload")); rec[0] != recBatch || string(rec[1:]) != "payload" {
		t.Fatalf("batch record framing wrong: %q", rec)
	}
	m := encodeMark(0x20001, 0xF0)
	if m[0] != recMark || beUint64(m[1:9]) != 0x20001 || beUint64(m[9:17]) != 0xF0 {
		t.Fatalf("mark framing wrong: %x", m)
	}
	c := encodeRB(recCommit, 42)
	if c[0] != recCommit || beUint64(c[1:9]) != 42 {
		t.Fatalf("commit framing wrong: %x", c)
	}
	ch := encodeImportChunk(42, chunkSeen, []byte{9, 9})
	if ch[0] != recImport || beUint64(ch[1:9]) != 42 || ch[9] != chunkSeen || len(ch) != 12 {
		t.Fatalf("chunk framing wrong: %x", ch)
	}
}

func TestSlotMaskHas(t *testing.T) {
	var mask uint64 = 1<<0 | 1<<13 | 1<<63
	for slot := 0; slot < NSlots; slot++ {
		want := slot == 0 || slot == 13 || slot == 63
		if slotMaskHas(mask, slot) != want {
			t.Fatalf("slot %d: has=%v want %v", slot, slotMaskHas(mask, slot), want)
		}
	}
}
