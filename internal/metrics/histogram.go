package metrics

import (
	"fmt"
	"math"
	"strings"
)

// Histogram is a log-bucketed histogram for latency-like positive values:
// constant relative error, bounded memory, mergeable — the structure a
// collector keeps per (switch, event type) for queue-latency reporting.
type Histogram struct {
	// growth is the bucket boundary ratio (1.25 → ≤12.5% relative error).
	growth float64
	// buckets[i] counts values in [growth^i, growth^(i+1)).
	buckets map[int]uint64
	count   uint64
	sum     float64
	min     float64
	max     float64
}

// NewHistogram creates a histogram with the default 1.25 growth factor.
func NewHistogram() *Histogram {
	return &Histogram{growth: 1.25, buckets: make(map[int]uint64), min: math.Inf(1)}
}

// Observe records one value; non-positive values clamp to the smallest
// bucket.
func (h *Histogram) Observe(v float64) {
	h.count++
	h.sum += v
	if v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.buckets[h.bucketOf(v)]++
}

func (h *Histogram) bucketOf(v float64) int {
	if v < 1 {
		return 0
	}
	return int(math.Log(v) / math.Log(h.growth))
}

// lower bound of bucket i.
func (h *Histogram) lower(i int) float64 {
	return math.Pow(h.growth, float64(i))
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count }

// Mean returns the running mean (0 when empty).
func (h *Histogram) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return h.sum / float64(h.count)
}

// Min and Max return the observed extremes (0 when empty).
func (h *Histogram) Min() float64 {
	if h.count == 0 {
		return 0
	}
	return h.min
}

// Max returns the observed maximum.
func (h *Histogram) Max() float64 { return h.max }

// Quantile returns an estimate of the q-quantile with the histogram's
// relative-error bound.
//
// Contract (shared with obs.HistogramSnapshot.Quantile and, for exact
// samples, metrics.Percentile): an empty histogram returns 0; q <= 0
// returns Min(), q >= 1 returns Max(); estimates are clamped to
// [Min(), Max()], so on small samples the bucket-midpoint approximation
// can never stray outside the observed range — a single observed value
// reports that value at every quantile, as nearest-rank does.
func (h *Histogram) Quantile(q float64) float64 {
	if h.count == 0 {
		return 0
	}
	if q <= 0 {
		return h.min
	}
	if q >= 1 {
		return h.max
	}
	target := uint64(math.Ceil(q * float64(h.count)))
	if target < 1 {
		target = 1
	}
	// Walk buckets in index order.
	lo, hi := math.MaxInt32, math.MinInt32
	for i := range h.buckets {
		if i < lo {
			lo = i
		}
		if i > hi {
			hi = i
		}
	}
	var acc uint64
	for i := lo; i <= hi; i++ {
		acc += h.buckets[i]
		if acc >= target {
			// Geometric midpoint of the bucket, clamped to the observed
			// range.
			est := h.lower(i) * math.Sqrt(h.growth)
			if est < h.min {
				est = h.min
			}
			if est > h.max {
				est = h.max
			}
			return est
		}
	}
	return h.max
}

// Merge adds other's observations into h. Both must share the growth
// factor (they do when both come from NewHistogram).
func (h *Histogram) Merge(other *Histogram) {
	if other == nil || other.count == 0 {
		return
	}
	h.count += other.count
	h.sum += other.sum
	if other.min < h.min {
		h.min = other.min
	}
	if other.max > h.max {
		h.max = other.max
	}
	for i, n := range other.buckets {
		h.buckets[i] += n
	}
}

// String renders count/mean/p50/p99/max on one line.
func (h *Histogram) String() string {
	if h.count == 0 {
		return "empty"
	}
	return fmt.Sprintf("n=%d mean=%.1f p50=%.1f p99=%.1f max=%.1f",
		h.count, h.Mean(), h.Quantile(0.5), h.Quantile(0.99), h.Max())
}

// Sparkline renders the distribution as a compact ASCII bar chart over
// the occupied bucket range (for fetquery/terminal output).
func (h *Histogram) Sparkline(width int) string {
	if h.count == 0 || width <= 0 {
		return ""
	}
	lo, hi := math.MaxInt32, math.MinInt32
	for i := range h.buckets {
		if i < lo {
			lo = i
		}
		if i > hi {
			hi = i
		}
	}
	span := hi - lo + 1
	cols := make([]uint64, width)
	for i, n := range h.buckets {
		col := (i - lo) * width / span
		cols[col] += n
	}
	var peak uint64
	for _, n := range cols {
		if n > peak {
			peak = n
		}
	}
	levels := []rune(" ▁▂▃▄▅▆▇█")
	var sb strings.Builder
	for _, n := range cols {
		idx := int(math.Round(float64(n) / float64(peak) * float64(len(levels)-1)))
		sb.WriteRune(levels[idx])
	}
	return sb.String()
}
