package metrics

import (
	"strings"
	"testing"
)

func TestPercentile(t *testing.T) {
	xs := []float64{5, 1, 3, 2, 4}
	cases := []struct {
		p    float64
		want float64
	}{
		{0, 1}, {20, 1}, {50, 3}, {99, 5}, {100, 5},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); got != c.want {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if Percentile(nil, 50) != 0 {
		t.Error("empty percentile not 0")
	}
	// Input must not be reordered.
	if xs[0] != 5 {
		t.Error("Percentile mutated its input")
	}
}

func TestMeanAndRatio(t *testing.T) {
	if Mean([]float64{1, 2, 3}) != 2 {
		t.Error("Mean wrong")
	}
	if Mean(nil) != 0 {
		t.Error("empty Mean not 0")
	}
	if Ratio(1, 2) != 0.5 || Ratio(1, 0) != 0 {
		t.Error("Ratio wrong")
	}
}

func TestFormatBps(t *testing.T) {
	cases := map[float64]string{
		500:    "500 bps",
		2e3:    "2.00 Kbps",
		3.5e6:  "3.50 Mbps",
		6.4e12: "6.40 Tbps",
		1e9:    "1.00 Gbps",
	}
	for in, want := range cases {
		if got := FormatBps(in); got != want {
			t.Errorf("FormatBps(%v) = %q, want %q", in, got, want)
		}
	}
}

func TestFormatCount(t *testing.T) {
	cases := map[float64]string{
		5:    "5",
		4e6:  "4.00M",
		86e6: "86.00M",
		2e9:  "2.00G",
		1500: "1.50K",
	}
	for in, want := range cases {
		if got := FormatCount(in); got != want {
			t.Errorf("FormatCount(%v) = %q, want %q", in, got, want)
		}
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("Demo", "name", "value")
	tb.AddRow("alpha", "1")
	tb.AddRow("beta-longer", "22")
	out := tb.String()
	if !strings.Contains(out, "== Demo ==") {
		t.Error("title missing")
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Fatalf("rendered %d lines: %q", len(lines), out)
	}
	// Columns align: every data line has "value" column starting at the
	// same offset.
	idx := strings.Index(lines[1], "value")
	for _, l := range lines[3:] {
		if len(l) < idx {
			t.Errorf("row %q shorter than header offset", l)
		}
	}
	if tb.Rows() != 2 {
		t.Errorf("Rows() = %d", tb.Rows())
	}
}
