// Package metrics provides the small statistics and formatting helpers
// the experiments share: percentiles, ratios, human-readable rates, and
// fixed-width text tables shaped like the paper's figures.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Percentile returns the p-th percentile (0–100) of xs using exact
// nearest-rank (no interpolation) on a sorted copy.
//
// Contract, shared with the histogram quantile estimators
// (metrics.Histogram.Quantile, obs.HistogramSnapshot.Quantile): empty
// input returns 0; p <= 0 returns the smallest element, p >= 100 the
// largest; results always lie inside the observed range, so on tiny
// samples (one or two elements) the exact and estimated forms agree —
// the estimators clamp their bucket approximation to [min, max] for
// exactly this reason.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := int(math.Ceil(p/100*float64(len(sorted)))) - 1
	if rank < 0 {
		rank = 0
	}
	return sorted[rank]
}

// Mean returns the arithmetic mean (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Ratio returns num/den, or 0 when den == 0.
func Ratio(num, den float64) float64 {
	if den == 0 {
		return 0
	}
	return num / den
}

// FormatBps renders a bit rate with automatic unit selection.
func FormatBps(bps float64) string {
	switch {
	case bps >= 1e12:
		return fmt.Sprintf("%.2f Tbps", bps/1e12)
	case bps >= 1e9:
		return fmt.Sprintf("%.2f Gbps", bps/1e9)
	case bps >= 1e6:
		return fmt.Sprintf("%.2f Mbps", bps/1e6)
	case bps >= 1e3:
		return fmt.Sprintf("%.2f Kbps", bps/1e3)
	default:
		return fmt.Sprintf("%.0f bps", bps)
	}
}

// FormatCount renders a count with automatic K/M/G suffix.
func FormatCount(n float64) string {
	switch {
	case n >= 1e9:
		return fmt.Sprintf("%.2fG", n/1e9)
	case n >= 1e6:
		return fmt.Sprintf("%.2fM", n/1e6)
	case n >= 1e3:
		return fmt.Sprintf("%.2fK", n/1e3)
	default:
		return fmt.Sprintf("%.0f", n)
	}
}

// Table accumulates rows and renders them with aligned columns — the
// output format of cmd/repro and the benchmark harness.
type Table struct {
	Title   string
	headers []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, headers: headers}
}

// AddRow appends a row; cells beyond the header count are kept.
func (t *Table) AddRow(cells ...string) {
	t.rows = append(t.rows, cells)
}

// Rows returns the row count.
func (t *Table) Rows() int { return len(t.rows) }

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var sb strings.Builder
	if t.Title != "" {
		sb.WriteString("== " + t.Title + " ==\n")
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i >= len(widths) {
				sb.WriteString("  " + c)
				continue
			}
			sb.WriteString(fmt.Sprintf("%-*s", widths[i], c))
			if i < len(cells)-1 {
				sb.WriteString("  ")
			}
		}
		sb.WriteString("\n")
	}
	writeRow(t.headers)
	var rule []string
	for _, w := range widths {
		rule = append(rule, strings.Repeat("-", w))
	}
	writeRow(rule)
	for _, r := range t.rows {
		writeRow(r)
	}
	return sb.String()
}
