package metrics

import (
	"math"
	"testing"
	"testing/quick"
)

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram()
	if h.Count() != 0 || h.Mean() != 0 || h.Min() != 0 || h.Quantile(0.5) != 0 {
		t.Error("empty histogram not zeroed")
	}
	for _, v := range []float64{10, 20, 30, 40, 50} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Errorf("Count = %d", h.Count())
	}
	if h.Mean() != 30 {
		t.Errorf("Mean = %v", h.Mean())
	}
	if h.Min() != 10 || h.Max() != 50 {
		t.Errorf("Min/Max = %v/%v", h.Min(), h.Max())
	}
}

func TestHistogramQuantileAccuracy(t *testing.T) {
	h := NewHistogram()
	// 1..10000: p50 ≈ 5000, p99 ≈ 9900 within the 12.5% relative bound
	// (plus bucket-midpoint slack).
	for v := 1; v <= 10000; v++ {
		h.Observe(float64(v))
	}
	checks := map[float64]float64{0.5: 5000, 0.9: 9000, 0.99: 9900}
	for q, want := range checks {
		got := h.Quantile(q)
		if rel := math.Abs(got-want) / want; rel > 0.15 {
			t.Errorf("Quantile(%v) = %v, want ≈%v (rel err %.3f)", q, got, want, rel)
		}
	}
}

func TestHistogramQuantileMonotone(t *testing.T) {
	f := func(values []uint16) bool {
		if len(values) == 0 {
			return true
		}
		h := NewHistogram()
		for _, v := range values {
			h.Observe(float64(v) + 1)
		}
		prev := 0.0
		for _, q := range []float64{0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0} {
			cur := h.Quantile(q)
			if cur < prev {
				return false
			}
			prev = cur
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestHistogramMerge(t *testing.T) {
	a, b := NewHistogram(), NewHistogram()
	for v := 1; v <= 100; v++ {
		a.Observe(float64(v))
	}
	for v := 101; v <= 200; v++ {
		b.Observe(float64(v))
	}
	a.Merge(b)
	if a.Count() != 200 {
		t.Errorf("merged count = %d", a.Count())
	}
	if a.Min() != 1 || a.Max() != 200 {
		t.Errorf("merged min/max = %v/%v", a.Min(), a.Max())
	}
	med := a.Quantile(0.5)
	if med < 85 || med > 120 {
		t.Errorf("merged median = %v, want ≈100", med)
	}
	a.Merge(nil)            // no-op
	a.Merge(NewHistogram()) // empty no-op
	if a.Count() != 200 {
		t.Error("no-op merges changed count")
	}
}

func TestHistogramNonPositiveClamped(t *testing.T) {
	h := NewHistogram()
	h.Observe(0)
	h.Observe(-5)
	h.Observe(0.5)
	if h.Count() != 3 {
		t.Errorf("Count = %d", h.Count())
	}
	if q := h.Quantile(0.5); q <= 0 || q > 2 {
		t.Errorf("clamped quantile = %v", q)
	}
}

func TestHistogramString(t *testing.T) {
	h := NewHistogram()
	if h.String() != "empty" {
		t.Error("empty string form")
	}
	h.Observe(100)
	if h.String() == "" || h.String() == "empty" {
		t.Error("non-empty string form")
	}
}

func TestSparkline(t *testing.T) {
	h := NewHistogram()
	if h.Sparkline(10) != "" {
		t.Error("empty sparkline should be empty")
	}
	for v := 1; v <= 1000; v++ {
		h.Observe(float64(v))
	}
	s := h.Sparkline(16)
	if len([]rune(s)) != 16 {
		t.Errorf("sparkline width = %d runes (%q)", len([]rune(s)), s)
	}
}
