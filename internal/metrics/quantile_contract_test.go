package metrics

import (
	"testing"

	"netseer/internal/obs"
)

// The repo has three quantile implementations: the exact nearest-rank
// Percentile, the log-bucketed metrics.Histogram estimator, and the
// fixed-bucket obs.HistogramSnapshot estimator. They share one contract —
// empty → 0, p at or below the bottom → min, p at or past the top → max,
// estimates never outside the observed range — and these tests pin all
// three to it on the small samples where estimators historically
// disagreed with the exact form.
func TestQuantileContractShared(t *testing.T) {
	cases := []struct {
		name    string
		samples []float64
		p       float64 // percent, 0–100
		want    float64 // exact nearest-rank answer
	}{
		{"empty_p50", nil, 50, 0},
		{"empty_p0", nil, 0, 0},
		{"empty_p100", nil, 100, 0},
		{"single_p0", []float64{3}, 0, 3},
		{"single_p50", []float64{3}, 50, 3},
		{"single_p100", []float64{3}, 100, 3},
		{"single_below_zero", []float64{3}, -10, 3},
		{"single_above_hundred", []float64{3}, 250, 3},
		{"two_p0", []float64{2, 10}, 0, 2},
		{"two_p100", []float64{2, 10}, 100, 10},
		{"large_value_p100", []float64{5000}, 100, 5000},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := Percentile(tc.samples, tc.p); got != tc.want {
				t.Errorf("Percentile(%v, %v) = %v, want %v", tc.samples, tc.p, got, tc.want)
			}

			mh := NewHistogram()
			oh := obs.NewHistogram(obs.LatencyBuckets())
			for _, v := range tc.samples {
				mh.Observe(v)
				oh.Observe(v)
			}
			q := tc.p / 100
			if got := mh.Quantile(q); got != tc.want {
				t.Errorf("metrics.Histogram.Quantile(%v) over %v = %v, want %v", q, tc.samples, got, tc.want)
			}
			if got := oh.Snapshot().Quantile(q); got != tc.want {
				t.Errorf("obs.HistogramSnapshot.Quantile(%v) over %v = %v, want %v", q, tc.samples, got, tc.want)
			}
		})
	}
}

// On two distinct values the mid quantiles may differ between exact and
// estimated forms, but every implementation must stay inside the observed
// range.
func TestQuantileEstimatesStayInRange(t *testing.T) {
	samples := []float64{2, 1000}
	mh := NewHistogram()
	oh := obs.NewHistogram(obs.LatencyBuckets())
	for _, v := range samples {
		mh.Observe(v)
		oh.Observe(v)
	}
	for _, q := range []float64{0.01, 0.25, 0.5, 0.75, 0.99} {
		if got := mh.Quantile(q); got < 2 || got > 1000 {
			t.Errorf("metrics.Histogram.Quantile(%v) = %v outside [2, 1000]", q, got)
		}
		if got := oh.Snapshot().Quantile(q); got < 2 || got > 1000 {
			t.Errorf("obs snapshot Quantile(%v) = %v outside [2, 1000]", q, got)
		}
		got := Percentile(samples, q*100)
		if got != 2 && got != 1000 {
			t.Errorf("Percentile(%v) = %v, want an observed element", q*100, got)
		}
	}
}
