package metrics

import "fmt"

// ChannelStats is a point-in-time snapshot of the client side of the
// reliable switch-CPU→collector channel (collector.Client.Stats). The
// live counters are atomic obs instruments on the client itself — also
// exposed on /metrics via Client.RegisterMetrics — and this struct is the
// offline copy their loads produce, kept for report formatting.
type ChannelStats struct {
	// Connects counts successful dials; Reconnects is the subset after
	// the first; DialFailures counts failed attempts.
	Connects, Reconnects, DialFailures uint64
	// BatchesSent counts frames written (including retransmits);
	// BatchesAcked counts batches covered by cumulative acks;
	// Retransmits counts frames rewritten after a connection drop.
	BatchesSent, BatchesAcked, Retransmits uint64
	// DroppedBatches counts overflow drops at the bounded queue — the
	// only place the channel is allowed to lose data, and it is counted.
	DroppedBatches uint64
	// Failovers counts switches to a different collector endpoint;
	// Promotions counts returns to the primary once its probe succeeds
	// (both 0 for a single-endpoint client).
	Failovers, Promotions uint64
	// QueueDepth/InflightDepth are the current backlog; HighWater is the
	// maximum queue+inflight ever observed.
	QueueDepth, InflightDepth, HighWater int
	// AckLatencyUs aggregates microseconds from a batch's last write to
	// the ack that covered it.
	AckLatencyUs *Histogram
}

// Format renders the snapshot as an aligned two-column table.
func (s ChannelStats) Format() string {
	t := NewTable("delivery channel health", "metric", "value")
	t.AddRow("connects", fmt.Sprint(s.Connects))
	t.AddRow("reconnects", fmt.Sprint(s.Reconnects))
	t.AddRow("dial failures", fmt.Sprint(s.DialFailures))
	t.AddRow("batches sent", fmt.Sprint(s.BatchesSent))
	t.AddRow("batches acked", fmt.Sprint(s.BatchesAcked))
	t.AddRow("retransmits", fmt.Sprint(s.Retransmits))
	t.AddRow("dropped (overflow)", fmt.Sprint(s.DroppedBatches))
	if s.Failovers > 0 || s.Promotions > 0 {
		t.AddRow("endpoint failovers", fmt.Sprint(s.Failovers))
		t.AddRow("primary promotions", fmt.Sprint(s.Promotions))
	}
	t.AddRow("backlog depth", fmt.Sprintf("%d queued + %d inflight", s.QueueDepth, s.InflightDepth))
	t.AddRow("backlog high-water", fmt.Sprint(s.HighWater))
	if s.AckLatencyUs != nil {
		t.AddRow("ack latency (µs)", s.AckLatencyUs.String())
	}
	return t.String()
}

// IngestStats is the server side of the channel (collector.Server.Stats):
// like ChannelStats, a snapshot of the server's atomic obs instruments.
type IngestStats struct {
	// ConnsAccepted/ConnsRejected count accepted connections and ones
	// closed for exceeding the concurrent-connection cap; AcceptRetries
	// counts transient Accept errors survived.
	ConnsAccepted, ConnsRejected, AcceptRetries uint64
	// Frames counts batches delivered to the store; FrameErrors counts
	// connections dropped on a malformed/corrupt/timed-out frame;
	// AckWriteErrors counts connections dropped writing an ack.
	Frames, FrameErrors, AckWriteErrors uint64
}

// Format renders the snapshot as an aligned two-column table.
func (s IngestStats) Format() string {
	t := NewTable("ingest channel health", "metric", "value")
	t.AddRow("conns accepted", fmt.Sprint(s.ConnsAccepted))
	t.AddRow("conns rejected", fmt.Sprint(s.ConnsRejected))
	t.AddRow("accept retries", fmt.Sprint(s.AcceptRetries))
	t.AddRow("frames ingested", fmt.Sprint(s.Frames))
	t.AddRow("frame errors", fmt.Sprint(s.FrameErrors))
	t.AddRow("ack write errors", fmt.Sprint(s.AckWriteErrors))
	return t.String()
}
