package metrics

import (
	"strings"
	"testing"
)

func TestChannelStatsFormat(t *testing.T) {
	h := NewHistogram()
	h.Observe(120)
	h.Observe(340)
	s := ChannelStats{
		Connects: 3, Reconnects: 2, DialFailures: 1,
		BatchesSent: 50, BatchesAcked: 48, Retransmits: 4, DroppedBatches: 1,
		QueueDepth: 2, InflightDepth: 0, HighWater: 17,
		AckLatencyUs: h,
	}
	out := s.Format()
	for _, want := range []string{
		"delivery channel health", "reconnects", "2",
		"retransmits", "4", "dropped (overflow)",
		"2 queued + 0 inflight", "backlog high-water", "17", "n=2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Format() missing %q:\n%s", want, out)
		}
	}
	// Nil histogram must not panic.
	_ = ChannelStats{}.Format()
}

func TestIngestStatsFormat(t *testing.T) {
	s := IngestStats{ConnsAccepted: 5, ConnsRejected: 1, AcceptRetries: 2,
		Frames: 100, FrameErrors: 3, AckWriteErrors: 1}
	out := s.Format()
	for _, want := range []string{"ingest channel health", "conns accepted", "accept retries", "frames ingested", "100"} {
		if !strings.Contains(out, want) {
			t.Errorf("Format() missing %q:\n%s", want, out)
		}
	}
}
