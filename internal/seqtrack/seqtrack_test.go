package seqtrack

import (
	"testing"
	"testing/quick"
)

func TestInOrderNoNotification(t *testing.T) {
	tr := New()
	for id := uint32(0); id < 1000; id++ {
		if n := tr.Observe(id); n != nil {
			t.Fatalf("notification %+v for in-order ID %d", n, id)
		}
	}
	recv, gaps, lost := tr.Stats()
	if recv != 1000 || gaps != 0 || lost != 0 {
		t.Errorf("stats = %d %d %d", recv, gaps, lost)
	}
}

func TestSingleGap(t *testing.T) {
	tr := New()
	tr.Observe(10)
	tr.Observe(11)
	n := tr.Observe(15) // 12,13,14 lost
	if n == nil {
		t.Fatal("no notification for gap")
	}
	if n.FromID != 12 || n.ToID != 14 || n.Count() != 3 {
		t.Errorf("notification = %+v", n)
	}
	// Sequence continues cleanly afterwards.
	if tr.Observe(16) != nil {
		t.Error("spurious notification after gap")
	}
}

func TestSingleLoss(t *testing.T) {
	tr := New()
	tr.Observe(0)
	n := tr.Observe(2)
	if n == nil || n.FromID != 1 || n.ToID != 1 || n.Count() != 1 {
		t.Fatalf("notification = %+v", n)
	}
}

func TestFirstPacketSynchronizes(t *testing.T) {
	tr := New()
	if n := tr.Observe(12345); n != nil {
		t.Errorf("notification on first packet: %+v", n)
	}
}

func TestWraparoundGap(t *testing.T) {
	tr := New()
	tr.Observe(0xfffffffe)
	n := tr.Observe(2) // 0xffffffff, 0, 1 lost
	if n == nil {
		t.Fatal("no notification across wraparound")
	}
	if n.FromID != 0xffffffff || n.ToID != 1 || n.Count() != 3 {
		t.Errorf("notification = %+v count=%d", n, n.Count())
	}
}

func TestWraparoundClean(t *testing.T) {
	tr := New()
	if tr.Observe(0xffffffff) != nil {
		t.Fatal("sync notification")
	}
	if n := tr.Observe(0); n != nil {
		t.Errorf("clean wraparound produced %+v", n)
	}
}

func TestBackwardJumpResyncs(t *testing.T) {
	tr := New()
	tr.Observe(1000)
	if n := tr.Observe(10); n != nil {
		t.Errorf("backward jump produced notification %+v", n)
	}
	// After resync, the next in-order packet is clean.
	if n := tr.Observe(11); n != nil {
		t.Errorf("post-resync packet produced %+v", n)
	}
}

func TestMultipleGapEpisodes(t *testing.T) {
	tr := New()
	tr.Observe(0)
	tr.Observe(5) // gap 1-4
	tr.Observe(6)
	tr.Observe(10) // gap 7-9
	_, gaps, lost := tr.Stats()
	if gaps != 2 || lost != 7 {
		t.Errorf("gaps=%d lost=%d, want 2, 7", gaps, lost)
	}
}

func TestLostAccountingProperty(t *testing.T) {
	// Drop an arbitrary subset of a sequence: total lost across
	// notifications equals the number of dropped IDs (ignoring a possibly
	// dropped tail, which no subsequent packet can reveal).
	f := func(dropMask []bool) bool {
		tr := New()
		tr.Observe(0) // sync
		want := uint64(0)
		var notified uint64
		lastDelivered := true
		pendingDrops := uint64(0)
		for i, drop := range dropMask {
			id := uint32(i + 1)
			if drop {
				pendingDrops++
				lastDelivered = false
				continue
			}
			want += pendingDrops
			pendingDrops = 0
			if n := tr.Observe(id); n != nil {
				notified += uint64(n.Count())
			}
			lastDelivered = true
		}
		_ = lastDelivered
		_, _, lost := tr.Stats()
		return lost == want && notified == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestReset(t *testing.T) {
	tr := New()
	tr.Observe(100)
	tr.Reset()
	if n := tr.Observe(0); n != nil {
		t.Errorf("notification after reset: %+v", n)
	}
}

func TestNotificationCodec(t *testing.T) {
	n := Notification{FromID: 0xfffffff0, ToID: 5}
	b := n.AppendTo(nil)
	if len(b) != NotificationLen {
		t.Fatalf("encoded %d bytes", len(b))
	}
	g, err := DecodeNotification(b)
	if err != nil || g != n {
		t.Fatalf("round trip: %+v, %v", g, err)
	}
	if _, err := DecodeNotification(b[:7]); err == nil {
		t.Error("truncated notification decoded")
	}
}

func TestNotificationCodecQuick(t *testing.T) {
	f := func(from, to uint32) bool {
		n := Notification{FromID: from, ToID: to}
		g, err := DecodeNotification(n.AppendTo(nil))
		return err == nil && g == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func BenchmarkObserveInOrder(b *testing.B) {
	tr := New()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Observe(uint32(i))
	}
}
