// Package seqtrack implements the downstream side of NetSeer's
// inter-switch drop detection (§3.3): per-ingress-port tracking of the
// consecutive packet IDs inserted by the upstream device. A gap in the
// sequence means packets were lost (or corrupted and dropped at the MAC);
// the tracker emits a loss notification naming the missing interval, which
// the upstream resolves against its ring buffer.
//
// Notifications are produced in triplicate (the paper sends three copies on
// a high-priority queue so the notification itself survives the lossy
// link).
package seqtrack

import (
	"encoding/binary"
	"fmt"
)

// NotifyCopies is the number of redundant copies of each loss notification
// the paper sends (§3.3).
const NotifyCopies = 3

// Notification reports that packet IDs in the inclusive interval
// [FromID, ToID] were not received on a link.
type Notification struct {
	// FromID..ToID is the missing interval (inclusive, mod 2³²).
	FromID uint32
	ToID   uint32
}

// Count returns the number of packets the notification covers.
func (n Notification) Count() uint32 { return n.ToID - n.FromID + 1 }

// NotificationLen is the wire size of an encoded notification: two 4-byte
// sequence numbers.
const NotificationLen = 8

// AppendTo appends the 8-byte encoding to b.
func (n Notification) AppendTo(b []byte) []byte {
	b = binary.BigEndian.AppendUint32(b, n.FromID)
	return binary.BigEndian.AppendUint32(b, n.ToID)
}

// DecodeNotification parses one encoded notification.
func DecodeNotification(b []byte) (Notification, error) {
	if len(b) < NotificationLen {
		return Notification{}, fmt.Errorf("seqtrack: notification truncated: %d bytes", len(b))
	}
	return Notification{
		FromID: binary.BigEndian.Uint32(b[0:4]),
		ToID:   binary.BigEndian.Uint32(b[4:8]),
	}, nil
}

// Tracker watches the packet-ID sequence arriving on one ingress port.
// It is not safe for concurrent use.
type Tracker struct {
	expected uint32
	started  bool

	received uint64
	gaps     uint64
	lost     uint64
}

// New returns a tracker that will synchronize to the first ID it sees.
func New() *Tracker {
	return &Tracker{}
}

// Observe processes the packet ID of one received packet and returns a
// non-nil *Notification if a gap precedes it.
//
// The link preserves ordering (it is a single fibre between two ports), so
// any jump forward means the skipped IDs were lost. A jump "backward"
// (id != expected but distance > 2³¹) would mean reordering, which cannot
// happen on a point-to-point link; the tracker resynchronizes and counts it
// as a resync rather than fabricating an absurd gap.
func (t *Tracker) Observe(id uint32) *Notification {
	t.received++
	if !t.started {
		t.started = true
		t.expected = id + 1
		return nil
	}
	if id == t.expected {
		t.expected = id + 1
		return nil
	}
	dist := id - t.expected // mod 2³² forward distance
	if dist >= 1<<31 {
		// Backward jump: impossible on an ordered link; resync silently.
		t.expected = id + 1
		return nil
	}
	n := &Notification{FromID: t.expected, ToID: id - 1}
	t.gaps++
	t.lost += uint64(dist)
	t.expected = id + 1
	return n
}

// Stats reports received packets, detected gap episodes, and total packets
// covered by emitted notifications.
func (t *Tracker) Stats() (received, gapEpisodes, lostPackets uint64) {
	return t.received, t.gaps, t.lost
}

// Reset returns the tracker to the unsynchronized state.
func (t *Tracker) Reset() {
	t.started = false
	t.expected = 0
}
