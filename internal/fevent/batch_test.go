package fevent

import (
	"testing"
)

// TestBatchSeqOutsideEncoding pins the layering contract: Seq belongs to
// the delivery channel's frame header, so the CEBP batch encoding must
// neither grow with it nor carry it.
func TestBatchSeqOutsideEncoding(t *testing.T) {
	b := &Batch{SwitchID: 3, Timestamp: 99, Seq: 12345,
		Events: []Event{{Type: TypeCongestion, SwitchID: 3, Timestamp: 99}}}
	plain := &Batch{SwitchID: 3, Timestamp: 99,
		Events: []Event{{Type: TypeCongestion, SwitchID: 3, Timestamp: 99}}}
	if b.EncodedLen() != plain.EncodedLen() {
		t.Fatalf("Seq changed EncodedLen: %d vs %d", b.EncodedLen(), plain.EncodedLen())
	}
	enc, err := b.AppendTo(nil)
	if err != nil {
		t.Fatal(err)
	}
	encPlain, err := plain.AppendTo(nil)
	if err != nil {
		t.Fatal(err)
	}
	if string(enc) != string(encPlain) {
		t.Error("Seq leaked into the batch body encoding")
	}
	var dec Batch
	dec.Seq = 777 // DecodeBatch must not invent or clear delivery state itself
	if _, err := DecodeBatch(enc, &dec); err != nil {
		t.Fatal(err)
	}
	if dec.SwitchID != 3 || len(dec.Events) != 1 {
		t.Fatalf("decode = %+v", dec)
	}
	if dec.Seq != 777 {
		t.Errorf("DecodeBatch touched Seq: %d", dec.Seq)
	}
}
