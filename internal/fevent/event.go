// Package fevent defines NetSeer's flow events and their exact wire
// encoding: every event is reported in a fixed 24-byte record (§4 of the
// paper: 13 B flow + event-specific fields + 2 B counter + 4 B pre-computed
// hash), and records are shipped in batches of ~50 prefixed by a small
// batch header naming the reporting switch.
package fevent

import (
	"encoding/binary"
	"fmt"

	"netseer/internal/pkt"
	"netseer/internal/sim"
)

// Type enumerates the four flow-event classes of §3.1.
type Type uint8

// Event types.
const (
	// TypeDrop covers every packet-drop class of Figure 4 (pipeline, MMU
	// congestion, inter-switch/card, …) discriminated by DropCode.
	TypeDrop Type = iota + 1
	// TypeCongestion is queuing delay above threshold.
	TypeCongestion
	// TypePathChange is a new flow or a flow whose (ingress, egress) port
	// pair changed.
	TypePathChange
	// TypePause is a packet arriving to a PFC-paused queue.
	TypePause
	// TypeHeavyHitter is the onset of a heavy-hitter flow: the count-min
	// estimate for the flow first crossed the configured packet threshold
	// (sketch stage, beyond the paper's fixed event set).
	TypeHeavyHitter
	// TypeTopKChurn is a flow entering the space-saving top-K table by
	// evicting the current minimum; SketchErr carries the inherited
	// overestimation bound (the evicted minimum counter).
	TypeTopKChurn
	// TypeAggSpike is a per-link aggregate byte spike: the bytes forwarded
	// through one egress port within one sketch window crossed the spike
	// threshold. The flow field is zero — the link, not a flow, is the
	// subject — and Window stamps which window fired.
	TypeAggSpike

	numTypes = 7
)

// Types lists all event types, for iteration in experiments.
var Types = []Type{TypeDrop, TypeCongestion, TypePathChange, TypePause,
	TypeHeavyHitter, TypeTopKChurn, TypeAggSpike}

// String names the type.
func (t Type) String() string {
	switch t {
	case TypeDrop:
		return "drop"
	case TypeCongestion:
		return "congestion"
	case TypePathChange:
		return "path-change"
	case TypePause:
		return "pause"
	case TypeHeavyHitter:
		return "heavy-hitter"
	case TypeTopKChurn:
		return "topk-churn"
	case TypeAggSpike:
		return "agg-spike"
	default:
		return fmt.Sprintf("type(%d)", uint8(t))
	}
}

// Valid reports whether t is one of the defined types.
func (t Type) Valid() bool { return t >= TypeDrop && t <= TypeAggSpike }

// DropCode encodes the drop reason taxonomy of Figure 4.
type DropCode uint8

// Drop reasons.
const (
	DropNone          DropCode = iota
	DropParityError            // table lookup miss caused by memory bit flip
	DropPortDown               // target port/link/switch down
	DropLinkDown               // link down at ingress
	DropACLDeny                // blocked by an ACL rule
	DropTTLExpired             // forwarding loop: TTL reached 0
	DropNoRoute                // routing table miss (blackhole)
	DropMTUExceeded            // larger-than-MTU packet
	DropMMUCongestion          // queue/buffer full in the MMU
	DropInterSwitch            // silent drop or corruption on a link
	DropInterCard              // drop between boards of a multi-card switch
	DropASICFailure            // malfunctioning ASIC (detected via syslog)
	DropMMUFailure             // malfunctioning MMU (detected via probing)
	DropCorruption             // frame damaged in flight (dropped at MAC)
)

// String names the drop code.
func (c DropCode) String() string {
	names := [...]string{
		"none", "parity-error", "port-down", "link-down", "acl-deny",
		"ttl-expired", "no-route", "mtu-exceeded", "mmu-congestion",
		"inter-switch", "inter-card", "asic-failure", "mmu-failure",
		"corruption",
	}
	if int(c) < len(names) {
		return names[c]
	}
	return fmt.Sprintf("drop(%d)", uint8(c))
}

// IsPipeline reports whether the code is one of the pipeline-drop reasons
// (as opposed to congestion or inter-switch drops).
func (c DropCode) IsPipeline() bool {
	switch c {
	case DropParityError, DropPortDown, DropLinkDown, DropACLDeny,
		DropTTLExpired, DropNoRoute, DropMTUExceeded:
		return true
	}
	return false
}

// Event is one flow event. The dedup/report path treats the combination
// returned by Key as the event identity; Count accumulates packets merged
// into this flow event by group caching.
type Event struct {
	Type Type
	Flow pkt.FlowKey

	// SwitchID identifies the reporting device (carried in the batch
	// header on the wire, not in the per-event record).
	SwitchID uint16
	// Timestamp is when the batch carrying this event left the data plane.
	Timestamp sim.Time

	// IngressPort / EgressPort are valid for drop and path-change events;
	// EgressPort also for congestion and pause.
	IngressPort uint8
	EgressPort  uint8
	// Queue is the egress queue, for congestion and pause events.
	Queue uint8
	// QueueLatencyUs is the measured queuing delay in microseconds, for
	// congestion events.
	QueueLatencyUs uint16
	// DropCode is the drop reason, for drop events.
	DropCode DropCode
	// ACLRule is the rule identifier for DropACLDeny events, which NetSeer
	// aggregates per rule rather than per flow (§3.4).
	ACLRule uint8
	// Window is the sketch window index, for aggregate-spike events.
	Window uint16
	// SketchErr is the space-saving overestimation bound inherited at table
	// entry (the evicted minimum), for top-K churn events.
	SketchErr uint16

	// Count is the number of packets aggregated into this event so far.
	Count uint16
	// Hash is the CRC-32C of the flow key, pre-computed in the data plane
	// so the switch CPU can index without hashing (§3.6).
	Hash uint32
}

// Key is the dedup identity of an event: same-key packets are aggregated
// into one flow event by group caching, and the switch CPU suppresses
// repeated initial reports per key. It is comparable.
type Key struct {
	Type     Type
	Flow     pkt.FlowKey
	DropCode DropCode
	ACLRule  uint8
	// In/Out are part of the identity for path-change events only: the
	// same flow on a *different* path is a different event, never a
	// duplicate. Out alone identifies the link for aggregate-spike events.
	In, Out uint8
	// Win is part of the identity for aggregate-spike events only: the
	// same link spiking in a *later* window is a new event.
	Win uint16
}

// Key returns the dedup identity of e. For ACL drops the flow field is
// zeroed: the paper aggregates those at ACL-rule granularity because the
// rule's match already describes the victim traffic.
func (e *Event) Key() Key {
	k := Key{Type: e.Type, DropCode: e.DropCode, ACLRule: e.ACLRule}
	if !(e.Type == TypeDrop && e.DropCode == DropACLDeny) {
		k.Flow = e.Flow
	}
	if e.Type == TypePathChange {
		k.In, k.Out = e.IngressPort, e.EgressPort
	}
	if e.Type == TypeAggSpike {
		k.Out, k.Win = e.EgressPort, e.Window
	}
	return k
}

// String renders the event compactly for logs and test failures.
func (e *Event) String() string {
	switch e.Type {
	case TypeDrop:
		return fmt.Sprintf("drop[%s] sw=%d %s in=%d out=%d n=%d",
			e.DropCode, e.SwitchID, e.Flow, e.IngressPort, e.EgressPort, e.Count)
	case TypeCongestion:
		return fmt.Sprintf("congestion sw=%d %s port=%d q=%d lat=%dus n=%d",
			e.SwitchID, e.Flow, e.EgressPort, e.Queue, e.QueueLatencyUs, e.Count)
	case TypePathChange:
		return fmt.Sprintf("path-change sw=%d %s in=%d out=%d",
			e.SwitchID, e.Flow, e.IngressPort, e.EgressPort)
	case TypePause:
		return fmt.Sprintf("pause sw=%d %s port=%d q=%d n=%d",
			e.SwitchID, e.Flow, e.EgressPort, e.Queue, e.Count)
	case TypeHeavyHitter:
		return fmt.Sprintf("heavy-hitter sw=%d %s in=%d out=%d n=%d",
			e.SwitchID, e.Flow, e.IngressPort, e.EgressPort, e.Count)
	case TypeTopKChurn:
		return fmt.Sprintf("topk-churn sw=%d %s out=%d n=%d err=%d",
			e.SwitchID, e.Flow, e.EgressPort, e.Count, e.SketchErr)
	case TypeAggSpike:
		return fmt.Sprintf("agg-spike sw=%d port=%d win=%d kB=%d",
			e.SwitchID, e.EgressPort, e.Window, e.Count)
	default:
		return fmt.Sprintf("event(type=%d)", e.Type)
	}
}

// RecordLen is the exact on-wire size of one event record: 1 B type tag,
// 13 B flow, 4 B event-specific detail, 2 B counter, 4 B hash.
const RecordLen = 24

// AppendRecord appends the 24-byte record encoding of e to b.
//
// Layout: type(1) | flow(13) | detail(4) | count(2) | hash(4), big-endian.
// Detail by type:
//
//	drop:         ingress(1) egress(1) dropCode(1) aclRule(1)
//	congestion:   egress(1) queue(1) latencyUs(2)
//	path-change:  ingress(1) egress(1) 0(2)
//	pause:        egress(1) queue(1) 0(2)
//	heavy-hitter: ingress(1) egress(1) 0(2)
//	topk-churn:   egress(1) 0(1) sketchErr(2)
//	agg-spike:    egress(1) 0(1) window(2)
func (e *Event) AppendRecord(b []byte) []byte {
	var r [RecordLen]byte
	r[0] = byte(e.Type)
	e.Flow.PutWire(r[1:14])
	switch e.Type {
	case TypeDrop:
		r[14] = e.IngressPort
		r[15] = e.EgressPort
		r[16] = byte(e.DropCode)
		r[17] = e.ACLRule
	case TypeCongestion:
		r[14] = e.EgressPort
		r[15] = e.Queue
		binary.BigEndian.PutUint16(r[16:18], e.QueueLatencyUs)
	case TypePathChange:
		r[14] = e.IngressPort
		r[15] = e.EgressPort
	case TypePause:
		r[14] = e.EgressPort
		r[15] = e.Queue
	case TypeHeavyHitter:
		r[14] = e.IngressPort
		r[15] = e.EgressPort
	case TypeTopKChurn:
		r[14] = e.EgressPort
		binary.BigEndian.PutUint16(r[16:18], e.SketchErr)
	case TypeAggSpike:
		r[14] = e.EgressPort
		binary.BigEndian.PutUint16(r[16:18], e.Window)
	}
	binary.BigEndian.PutUint16(r[18:20], e.Count)
	binary.BigEndian.PutUint32(r[20:24], e.Hash)
	return append(b, r[:]...)
}

// DecodeRecord parses one 24-byte record into e, overwriting all per-record
// fields (SwitchID and Timestamp are left untouched: they come from the
// batch header).
func (e *Event) DecodeRecord(b []byte) error {
	if len(b) < RecordLen {
		return fmt.Errorf("fevent: record truncated: %d bytes", len(b))
	}
	t := Type(b[0])
	if !t.Valid() {
		return fmt.Errorf("fevent: invalid event type %d", b[0])
	}
	e.Type = t
	flow, err := pkt.FlowKeyFromWire(b[1:14])
	if err != nil {
		return err
	}
	e.Flow = flow
	e.IngressPort, e.EgressPort, e.Queue = 0, 0, 0
	e.QueueLatencyUs, e.DropCode, e.ACLRule = 0, DropNone, 0
	e.Window, e.SketchErr = 0, 0
	switch t {
	case TypeDrop:
		e.IngressPort = b[14]
		e.EgressPort = b[15]
		e.DropCode = DropCode(b[16])
		e.ACLRule = b[17]
	case TypeCongestion:
		e.EgressPort = b[14]
		e.Queue = b[15]
		e.QueueLatencyUs = binary.BigEndian.Uint16(b[16:18])
	case TypePathChange:
		e.IngressPort = b[14]
		e.EgressPort = b[15]
	case TypePause:
		e.EgressPort = b[14]
		e.Queue = b[15]
	case TypeHeavyHitter:
		e.IngressPort = b[14]
		e.EgressPort = b[15]
	case TypeTopKChurn:
		e.EgressPort = b[14]
		e.SketchErr = binary.BigEndian.Uint16(b[16:18])
	case TypeAggSpike:
		e.EgressPort = b[14]
		e.Window = binary.BigEndian.Uint16(b[16:18])
	}
	e.Count = binary.BigEndian.Uint16(b[18:20])
	e.Hash = binary.BigEndian.Uint32(b[20:24])
	return nil
}
