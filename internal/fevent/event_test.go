package fevent

import (
	"strings"
	"testing"
	"testing/quick"

	"netseer/internal/pkt"
	"netseer/internal/sim"
)

func sampleFlow() pkt.FlowKey {
	return pkt.FlowKey{
		SrcIP: pkt.IP(10, 0, 0, 1), DstIP: pkt.IP(10, 0, 3, 4),
		SrcPort: 5123, DstPort: 80, Proto: pkt.ProtoTCP,
	}
}

func TestRecordLenIs24(t *testing.T) {
	// The paper's headline: any event fits in 24 bytes (§3.4, §4).
	e := Event{Type: TypeCongestion, Flow: sampleFlow(), EgressPort: 7, Queue: 3,
		QueueLatencyUs: 1500, Count: 12, Hash: 0xdeadbeef}
	b := e.AppendRecord(nil)
	if len(b) != 24 || len(b) != RecordLen {
		t.Fatalf("record length = %d, want 24", len(b))
	}
}

func TestRecordRoundTripAllTypes(t *testing.T) {
	events := []Event{
		{Type: TypeDrop, Flow: sampleFlow(), IngressPort: 3, EgressPort: 9,
			DropCode: DropNoRoute, Count: 1, Hash: 42},
		{Type: TypeDrop, Flow: pkt.FlowKey{}, DropCode: DropACLDeny, ACLRule: 17,
			Count: 900, Hash: 7},
		{Type: TypeCongestion, Flow: sampleFlow(), EgressPort: 1, Queue: 5,
			QueueLatencyUs: 65535, Count: 65535, Hash: 0xffffffff},
		{Type: TypePathChange, Flow: sampleFlow(), IngressPort: 2, EgressPort: 4,
			Count: 1, Hash: 1},
		{Type: TypePause, Flow: sampleFlow(), EgressPort: 6, Queue: 7, Count: 3, Hash: 2},
	}
	for _, e := range events {
		b := e.AppendRecord(nil)
		var g Event
		if err := g.DecodeRecord(b); err != nil {
			t.Fatalf("%v: %v", e.Type, err)
		}
		if g != e {
			t.Errorf("round trip %v:\n got %+v\nwant %+v", e.Type, g, e)
		}
	}
}

func TestRecordQuickRoundTrip(t *testing.T) {
	f := func(typ uint8, src, dst uint32, sp, dp uint16, proto uint8,
		in, out, q uint8, lat uint16, code uint8, rule uint8, count uint16, hash uint32) bool {
		e := Event{
			Type:  Type(typ%numTypes) + TypeDrop,
			Flow:  pkt.FlowKey{SrcIP: src, DstIP: dst, SrcPort: sp, DstPort: dp, Proto: proto},
			Count: count, Hash: hash,
		}
		switch e.Type {
		case TypeDrop:
			e.IngressPort, e.EgressPort, e.DropCode, e.ACLRule = in, out, DropCode(code%14), rule
		case TypeCongestion:
			e.EgressPort, e.Queue, e.QueueLatencyUs = out, q&7, lat
		case TypePathChange:
			e.IngressPort, e.EgressPort = in, out
		case TypePause:
			e.EgressPort, e.Queue = out, q&7
		}
		var g Event
		if err := g.DecodeRecord(e.AppendRecord(nil)); err != nil {
			return false
		}
		return g == e
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestDecodeRecordErrors(t *testing.T) {
	var e Event
	if err := e.DecodeRecord(make([]byte, 23)); err == nil {
		t.Error("truncated record decoded")
	}
	bad := make([]byte, RecordLen)
	bad[0] = 99 // invalid type
	if err := e.DecodeRecord(bad); err == nil {
		t.Error("invalid type decoded")
	}
	bad[0] = 0 // zero type is also invalid
	if err := e.DecodeRecord(bad); err == nil {
		t.Error("zero type decoded")
	}
}

func TestEventKeyAggregation(t *testing.T) {
	a := Event{Type: TypeCongestion, Flow: sampleFlow(), Queue: 1}
	b := Event{Type: TypeCongestion, Flow: sampleFlow(), Queue: 5}
	if a.Key() != b.Key() {
		t.Error("same (type, flow) should share a dedup key regardless of detail")
	}
	c := Event{Type: TypeDrop, Flow: sampleFlow(), DropCode: DropNoRoute}
	if a.Key() == c.Key() {
		t.Error("different types must not share a key")
	}
	d := Event{Type: TypeDrop, Flow: sampleFlow(), DropCode: DropTTLExpired}
	if c.Key() == d.Key() {
		t.Error("different drop codes must not share a key")
	}
}

func TestACLKeyIgnoresFlow(t *testing.T) {
	// §3.4: ACL drops aggregate at rule granularity, not flow granularity.
	a := Event{Type: TypeDrop, DropCode: DropACLDeny, ACLRule: 3, Flow: sampleFlow()}
	b := Event{Type: TypeDrop, DropCode: DropACLDeny, ACLRule: 3,
		Flow: pkt.FlowKey{SrcIP: 1, DstIP: 2, SrcPort: 3, DstPort: 4, Proto: 5}}
	if a.Key() != b.Key() {
		t.Error("ACL drops with the same rule must aggregate across flows")
	}
	c := Event{Type: TypeDrop, DropCode: DropACLDeny, ACLRule: 4, Flow: sampleFlow()}
	if a.Key() == c.Key() {
		t.Error("different ACL rules must not aggregate")
	}
}

func TestTypeString(t *testing.T) {
	for _, tt := range Types {
		if !tt.Valid() {
			t.Errorf("%v not valid", tt)
		}
		if strings.Contains(tt.String(), "type(") {
			t.Errorf("missing name for %d", tt)
		}
	}
	if Type(77).String() != "type(77)" {
		t.Error("unknown type name")
	}
	if Type(0).Valid() || Type(8).Valid() {
		t.Error("out-of-range types report valid")
	}
}

func TestDropCodeString(t *testing.T) {
	if DropNoRoute.String() != "no-route" {
		t.Errorf("DropNoRoute = %q", DropNoRoute.String())
	}
	if DropCode(200).String() != "drop(200)" {
		t.Error("unknown code name")
	}
}

func TestDropCodeIsPipeline(t *testing.T) {
	pipeline := []DropCode{DropParityError, DropPortDown, DropLinkDown,
		DropACLDeny, DropTTLExpired, DropNoRoute, DropMTUExceeded}
	for _, c := range pipeline {
		if !c.IsPipeline() {
			t.Errorf("%v should be a pipeline drop", c)
		}
	}
	for _, c := range []DropCode{DropMMUCongestion, DropInterSwitch, DropInterCard, DropNone} {
		if c.IsPipeline() {
			t.Errorf("%v should not be a pipeline drop", c)
		}
	}
}

func TestEventString(t *testing.T) {
	events := []Event{
		{Type: TypeDrop, DropCode: DropNoRoute, Flow: sampleFlow()},
		{Type: TypeCongestion, Flow: sampleFlow()},
		{Type: TypePathChange, Flow: sampleFlow()},
		{Type: TypePause, Flow: sampleFlow()},
		{Type: Type(9)},
	}
	for _, e := range events {
		if e.String() == "" {
			t.Errorf("empty String() for %v", e.Type)
		}
	}
}

func TestBatchRoundTrip(t *testing.T) {
	b := Batch{SwitchID: 12, Timestamp: 5 * sim.Second}
	for i := 0; i < DefaultBatchSize; i++ {
		b.Events = append(b.Events, Event{
			Type: TypeCongestion, Flow: sampleFlow(),
			EgressPort: uint8(i), Queue: uint8(i % 8),
			QueueLatencyUs: uint16(i * 10), Count: uint16(i + 1), Hash: sampleFlow().Hash(),
		})
	}
	buf, err := b.AppendTo(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(buf) != b.EncodedLen() {
		t.Fatalf("encoded %d bytes, EncodedLen says %d", len(buf), b.EncodedLen())
	}
	var g Batch
	rest, err := DecodeBatch(buf, &g)
	if err != nil {
		t.Fatal(err)
	}
	if len(rest) != 0 {
		t.Errorf("rest = %d bytes", len(rest))
	}
	if g.SwitchID != 12 || g.Timestamp != 5*sim.Second || len(g.Events) != DefaultBatchSize {
		t.Fatalf("header round trip: %+v", g)
	}
	for i, e := range g.Events {
		if e.SwitchID != 12 || e.Timestamp != 5*sim.Second {
			t.Fatalf("event %d not stamped from header: %+v", i, e)
		}
		if e.EgressPort != uint8(i) {
			t.Fatalf("event %d corrupted: %+v", i, e)
		}
	}
}

func TestBatchTooLarge(t *testing.T) {
	b := Batch{Events: make([]Event, MaxBatchRecords+1)}
	if _, err := b.AppendTo(nil); err == nil {
		t.Error("oversized batch encoded")
	}
}

func TestDecodeBatchErrors(t *testing.T) {
	var g Batch
	if _, err := DecodeBatch(make([]byte, 5), &g); err == nil {
		t.Error("truncated header decoded")
	}
	// Valid header claiming more records than present.
	b := Batch{SwitchID: 1, Events: []Event{{Type: TypeDrop, DropCode: DropNoRoute}}}
	buf, _ := b.AppendTo(nil)
	if _, err := DecodeBatch(buf[:len(buf)-1], &g); err == nil {
		t.Error("truncated body decoded")
	}
}

func TestDecodeBatchStream(t *testing.T) {
	// Two batches back-to-back decode sequentially.
	b1 := Batch{SwitchID: 1, Events: []Event{{Type: TypePause, Flow: sampleFlow(), EgressPort: 1}}}
	b2 := Batch{SwitchID: 2, Events: []Event{{Type: TypeDrop, Flow: sampleFlow(), DropCode: DropTTLExpired}}}
	buf, _ := b1.AppendTo(nil)
	buf, _ = b2.AppendTo(buf)
	var g Batch
	rest, err := DecodeBatch(buf, &g)
	if err != nil || g.SwitchID != 1 {
		t.Fatalf("first batch: %v %+v", err, g)
	}
	rest, err = DecodeBatch(rest, &g)
	if err != nil || g.SwitchID != 2 {
		t.Fatalf("second batch: %v %+v", err, g)
	}
	if len(rest) != 0 {
		t.Errorf("rest = %d bytes", len(rest))
	}
}

func TestDecodeBatchReusesEventSlice(t *testing.T) {
	b := Batch{SwitchID: 1, Events: make([]Event, 10)}
	for i := range b.Events {
		b.Events[i] = Event{Type: TypePause, Flow: sampleFlow()}
	}
	buf, _ := b.AppendTo(nil)
	g := Batch{Events: make([]Event, 0, 64)}
	base := &g.Events[:1][0]
	if _, err := DecodeBatch(buf, &g); err != nil {
		t.Fatal(err)
	}
	if &g.Events[0] != base {
		t.Error("DecodeBatch reallocated a sufficient slice")
	}
}

func BenchmarkAppendRecord(b *testing.B) {
	e := Event{Type: TypeCongestion, Flow: sampleFlow(), EgressPort: 7, Queue: 3,
		QueueLatencyUs: 1500, Count: 12, Hash: 0xdeadbeef}
	buf := make([]byte, 0, RecordLen)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = e.AppendRecord(buf[:0])
	}
}

func BenchmarkDecodeBatch50(b *testing.B) {
	batch := Batch{SwitchID: 3}
	for i := 0; i < 50; i++ {
		batch.Events = append(batch.Events, Event{Type: TypeDrop, Flow: sampleFlow(),
			DropCode: DropMMUCongestion, Count: 1, Hash: 1})
	}
	buf, _ := batch.AppendTo(nil)
	var g Batch
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeBatch(buf, &g); err != nil {
			b.Fatal(err)
		}
	}
}
