package fevent

import (
	"encoding/binary"
	"fmt"

	"netseer/internal/obs/trace"
	"netseer/internal/sim"
)

// BatchHeaderLen is the encoded size of a batch header: switch ID (2 B),
// timestamp (8 B, nanoseconds), record count (2 B).
const BatchHeaderLen = 2 + 8 + 2

// DefaultBatchSize is the paper's recommended number of events per batch
// packet (§3.5).
const DefaultBatchSize = 50

// MaxBatchRecords bounds a single batch to what fits in a jumbo-ish export
// frame; the encoder enforces it.
const MaxBatchRecords = 370

// Batch is a group of events reported together by one switch.
type Batch struct {
	SwitchID  uint16
	Timestamp sim.Time
	Events    []Event

	// Seq is the delivery-layer sequence number stamped by the reliable
	// collector client (1-based, lifetime-monotonic per client; 0 =
	// unsequenced in-process delivery). It travels in the frame header
	// of the CPU→collector channel, not in the batch body, so the CEBP
	// encoding below (AppendTo/DecodeBatch) deliberately ignores it.
	Seq uint64

	// Trace is the distributed-tracing context assigned at the CEBP
	// batcher and carried across every hop the batch takes. Like Seq it
	// travels in the frame header (the v3 trace-context extension), not
	// in the batch body, so AppendTo/DecodeBatch ignore it too; the zero
	// Context marks an untraced batch (all pre-PR 9 frames decode to it).
	Trace trace.Context
}

// EncodedLen returns the on-wire size of the batch.
func (b *Batch) EncodedLen() int { return BatchHeaderLen + RecordLen*len(b.Events) }

// AppendTo appends the encoded batch to buf. It returns an error if the
// batch exceeds MaxBatchRecords.
func (b *Batch) AppendTo(buf []byte) ([]byte, error) {
	if len(b.Events) > MaxBatchRecords {
		return nil, fmt.Errorf("fevent: batch of %d records exceeds max %d", len(b.Events), MaxBatchRecords)
	}
	buf = binary.BigEndian.AppendUint16(buf, b.SwitchID)
	buf = binary.BigEndian.AppendUint64(buf, uint64(b.Timestamp))
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(b.Events)))
	for i := range b.Events {
		buf = b.Events[i].AppendRecord(buf)
	}
	return buf, nil
}

// DecodeBatch parses one encoded batch from data, stamping every decoded
// event with the batch's switch ID and timestamp. It returns the remainder
// of data past the batch.
func DecodeBatch(data []byte, b *Batch) ([]byte, error) {
	if len(data) < BatchHeaderLen {
		return nil, fmt.Errorf("fevent: batch header truncated: %d bytes", len(data))
	}
	b.SwitchID = binary.BigEndian.Uint16(data[0:2])
	b.Timestamp = sim.Time(binary.BigEndian.Uint64(data[2:10]))
	n := int(binary.BigEndian.Uint16(data[10:12]))
	if n > MaxBatchRecords {
		return nil, fmt.Errorf("fevent: batch claims %d records, max %d", n, MaxBatchRecords)
	}
	data = data[BatchHeaderLen:]
	if len(data) < n*RecordLen {
		return nil, fmt.Errorf("fevent: batch body truncated: want %d records, have %d bytes", n, len(data))
	}
	if cap(b.Events) < n {
		b.Events = make([]Event, n)
	} else {
		b.Events = b.Events[:n]
	}
	for i := 0; i < n; i++ {
		if err := b.Events[i].DecodeRecord(data[i*RecordLen:]); err != nil {
			return nil, err
		}
		b.Events[i].SwitchID = b.SwitchID
		b.Events[i].Timestamp = b.Timestamp
	}
	return data[n*RecordLen:], nil
}
