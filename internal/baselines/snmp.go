package baselines

import (
	"netseer/internal/dataplane"
	"netseer/internal/sim"
)

// SNMP polls per-port counters at a fixed interval — the monitoring that
// already exists on every fixed-function switch. It sees aggregate drops
// and utilization per port but can never attribute anything to a flow, so
// its flow-event detections are empty by construction; case studies use
// its counter timeline instead.
type SNMP struct {
	sim      *sim.Simulator
	switches []*dataplane.Switch
	interval sim.Time

	// Samples holds one row per (poll, switch, port).
	Samples []SNMPSample

	prev    map[snmpKey]dataplane.PortCounters
	stopped bool
}

// SNMPSample is one counter delta observation.
type SNMPSample struct {
	At       sim.Time
	SwitchID uint16
	Port     int
	// Deltas since the previous poll.
	RxBytes, TxBytes, Drops uint64
}

type snmpKey struct {
	sw   uint16
	port int
}

// NewSNMP starts polling the given switches every interval (the paper's
// production SNMP is minute-level; tests use shorter).
func NewSNMP(s *sim.Simulator, switches []*dataplane.Switch, interval sim.Time) *SNMP {
	p := &SNMP{
		sim: s, switches: switches, interval: interval,
		prev: make(map[snmpKey]dataplane.PortCounters),
	}
	p.schedule()
	return p
}

// Name implements System.
func (p *SNMP) Name() string { return "snmp" }

// Stop halts polling.
func (p *SNMP) Stop() { p.stopped = true }

func (p *SNMP) schedule() {
	p.sim.Schedule(p.interval, func() {
		if p.stopped {
			return
		}
		p.poll()
		p.schedule()
	})
}

func (p *SNMP) poll() {
	now := p.sim.Now()
	for _, sw := range p.switches {
		for port := 0; port < sw.NumPorts(); port++ {
			cur := sw.Counters(port)
			key := snmpKey{sw.ID, port}
			prev := p.prev[key]
			p.prev[key] = cur
			p.Samples = append(p.Samples, SNMPSample{
				At: now, SwitchID: sw.ID, Port: port,
				RxBytes: cur.RxBytes - prev.RxBytes,
				TxBytes: cur.TxBytes - prev.TxBytes,
				Drops:   cur.Drops - prev.Drops,
			})
		}
	}
}

// DropsObserved reports the total counter-visible drops across all polls
// (silent drops never appear here — the Case-3 blind spot).
func (p *SNMP) DropsObserved() uint64 {
	var total uint64
	for _, s := range p.Samples {
		total += s.Drops
	}
	return total
}

// Detected implements System: always empty — counters carry no flow
// identity.
func (p *SNMP) Detected() Detections { return make(Detections) }

// OverheadBytes implements System: counter polling is management-plane
// traffic, ~100 B per port per poll.
func (p *SNMP) OverheadBytes() uint64 {
	return uint64(len(p.Samples)) * 100
}
