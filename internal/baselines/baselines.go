// Package baselines implements the five comparison monitoring systems of
// the paper's evaluation (§5): SNMP counter polling, 1:N packet sampling,
// Pingmesh active probing, EverFlow (SYN/FIN mirroring + on-demand
// per-flow telemetry), and NetSight (per-packet postcards).
//
// Each system records what it could *detect with flow attribution* as a
// set of dataplane.FlowEventKey values, plus the monitoring bytes it
// shipped, so the experiments can compute the coverage (Fig. 9–10) and
// overhead (Fig. 11) comparisons against the ground-truth ledger.
package baselines

import (
	"netseer/internal/dataplane"
	"netseer/internal/fevent"
	"netseer/internal/pkt"
)

// Detections is a set of flow events a monitoring system claimed.
type Detections map[dataplane.FlowEventKey]bool

// add records a detection.
func (d Detections) add(sw uint16, t fevent.Type, flow pkt.FlowKey, code fevent.DropCode) {
	d[dataplane.FlowEventKey{SwitchID: sw, Type: t, Flow: flow, Code: code}] = true
}

// addPath records a port-qualified path observation.
func (d Detections) addPath(sw uint16, flow pkt.FlowKey, in, out uint8) {
	d[dataplane.FlowEventKey{SwitchID: sw, Type: fevent.TypePathChange, Flow: flow, In: in, Out: out}] = true
}

// MirrorTruncation is the mirror copy size used by EverFlow and NetSight
// in the testbed configuration ("all mirrored packets are truncated to 64
// bytes").
const MirrorTruncation = 64

// System is the common reporting surface of all baselines.
type System interface {
	Name() string
	// Detected returns the flow events the system could report with flow
	// attribution.
	Detected() Detections
	// OverheadBytes returns total monitoring traffic generated.
	OverheadBytes() uint64
}
