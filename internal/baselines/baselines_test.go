package baselines

import (
	"testing"

	"netseer/internal/dataplane"
	"netseer/internal/fevent"
	"netseer/internal/host"
	"netseer/internal/nic"
	"netseer/internal/pkt"
	"netseer/internal/sim"
	"netseer/internal/topo"
	"netseer/internal/workload"
)

type blNet struct {
	sim    *sim.Simulator
	fab    *dataplane.Fabric
	gt     *dataplane.GroundTruth
	routes *topo.Routes
	hosts  []*host.Host
	pktID  uint64
}

func newBlNet(t *testing.T, swCfg dataplane.Config) *blNet {
	t.Helper()
	s := sim.New()
	tp := topo.Testbed()
	routes := topo.BuildRoutes(tp)
	gt := dataplane.NewGroundTruth()
	fab := dataplane.BuildFabric(s, tp, routes, swCfg, gt, 3)
	n := &blNet{sim: s, fab: fab, gt: gt, routes: routes}
	for _, hn := range tp.Hosts() {
		h := host.Attach(s, fab, hn, nic.Config{DisableSeq: true}, &n.pktID)
		h.Handle(workload.DataPort, func(*pkt.Packet) {})
		n.hosts = append(n.hosts, h)
	}
	return n
}

func (n *blNet) addMonitor(m dataplane.Monitor) {
	n.fab.EachSwitch(func(sw *dataplane.Switch) { sw.AddMonitor(m) })
}

func TestSamplerRatioAndOverhead(t *testing.T) {
	n := newBlNet(t, dataplane.Config{})
	s := NewSampler(10, 10*sim.Microsecond)
	n.addMonitor(s)
	src, dst := n.hosts[0], n.hosts[31]
	flow := pkt.FlowKey{SrcIP: src.Node.IP, DstIP: dst.Node.IP, SrcPort: 1, DstPort: workload.DataPort, Proto: pkt.ProtoUDP}
	src.SendUDP(flow, 1000, 724, 0)
	n.sim.RunAll()
	// 1000 packets × 5 switch hops = 5000 ingress events; 1:10 → ~500
	// samples × 64 B.
	want := uint64(500 * 64)
	if s.OverheadBytes() != want {
		t.Errorf("overhead = %d, want %d", s.OverheadBytes(), want)
	}
	if len(s.Detected()) == 0 {
		t.Error("sampled flow not detected at all")
	}
}

func TestSamplerCannotSeeDrops(t *testing.T) {
	n := newBlNet(t, dataplane.Config{})
	s := NewSampler(10, 10*sim.Microsecond)
	n.addMonitor(s)
	src := n.hosts[0]
	dst := n.hosts[31]
	tor := n.fab.HostPorts[src.Node.ID][0].Switch
	tor.SetRouteOverride(dst.Node.IP, []int{})
	flow := pkt.FlowKey{SrcIP: src.Node.IP, DstIP: dst.Node.IP, SrcPort: 1, DstPort: workload.DataPort, Proto: pkt.ProtoUDP}
	src.SendUDP(flow, 100, 724, 0)
	n.sim.RunAll()
	for k := range s.Detected() {
		if k.Type == fevent.TypeDrop {
			t.Fatal("sampler detected a drop — impossible for sFlow")
		}
	}
	if len(n.gt.Drops) != 100 {
		t.Fatalf("ground truth drops = %d", len(n.gt.Drops))
	}
}

func TestEverFlowWatchedFlowCoverage(t *testing.T) {
	n := newBlNet(t, dataplane.Config{})
	e := NewEverFlow(n.sim, 10*sim.Microsecond, sim.Millisecond, 1)
	n.addMonitor(e)
	src, dst := n.hosts[0], n.hosts[31]
	flow := pkt.FlowKey{SrcIP: src.Node.IP, DstIP: dst.Node.IP, SrcPort: 9, DstPort: workload.DataPort, Proto: pkt.ProtoUDP}
	// First packets establish the flow as a candidate.
	src.SendUDP(flow, 10, 724, 0)
	n.sim.Run(3 * sim.Millisecond) // at least one rotation: flow watched
	// Now drop its packets at the ToR.
	tor := n.fab.HostPorts[src.Node.ID][0].Switch
	tor.SetRouteOverride(dst.Node.IP, []int{})
	src.SendUDP(flow, 10, 724, 0)
	n.sim.Run(6 * sim.Millisecond)
	e.Stop()
	n.sim.RunAll()
	var dropSeen bool
	for k := range e.Detected() {
		if k.Type == fevent.TypeDrop && k.Flow == flow {
			dropSeen = true
		}
	}
	if !dropSeen {
		t.Error("watched flow's drop not detected")
	}
}

func TestEverFlowUnwatchedFlowInvisible(t *testing.T) {
	n := newBlNet(t, dataplane.Config{})
	e := NewEverFlow(n.sim, 10*sim.Microsecond, 0, 1)
	n.addMonitor(e) // default rotation 60 s: nothing is ever watched here
	src, dst := n.hosts[0], n.hosts[31]
	tor := n.fab.HostPorts[src.Node.ID][0].Switch
	tor.SetRouteOverride(dst.Node.IP, []int{})
	flow := pkt.FlowKey{SrcIP: src.Node.IP, DstIP: dst.Node.IP, SrcPort: 9, DstPort: workload.DataPort, Proto: pkt.ProtoUDP}
	src.SendUDP(flow, 100, 724, 0)
	n.sim.Run(10 * sim.Millisecond)
	e.Stop()
	n.sim.RunAll()
	for k := range e.Detected() {
		if k.Type == fevent.TypeDrop {
			t.Fatal("unwatched flow's drop detected")
		}
	}
}

func TestNetSightFullCoverage(t *testing.T) {
	n := newBlNet(t, dataplane.Config{QueueLimitBytes: 32 << 10})
	ns := NewNetSight(10 * sim.Microsecond)
	n.addMonitor(ns)
	// Mixed events: a blackhole plus an incast.
	src, dst := n.hosts[0], n.hosts[31]
	tor := n.fab.HostPorts[src.Node.ID][0].Switch
	tor.SetRouteOverride(dst.Node.IP, []int{})
	flow := pkt.FlowKey{SrcIP: src.Node.IP, DstIP: dst.Node.IP, SrcPort: 9, DstPort: workload.DataPort, Proto: pkt.ProtoUDP}
	src.SendUDP(flow, 50, 724, 0)
	workload.Incast(n.sim, n.hosts[8:24], n.hosts[1], 1<<19, 1000, 0)
	n.sim.RunAll()

	// NetSight must cover every ground-truth drop flow event.
	want := n.gt.DropFlowEvents(nil)
	det := ns.Detected()
	for k := range want {
		if k.Code == fevent.DropCorruption {
			continue // MAC discards have no postcard
		}
		if !det[k] {
			t.Fatalf("NetSight missed drop event %+v", k)
		}
	}
	// And every congestion flow event.
	for k := range n.gt.CongestionFlowEvents() {
		if !det[k] {
			t.Fatalf("NetSight missed congestion event %+v", k)
		}
	}
	if ns.OverheadBytes() == 0 || ns.Postcards() == 0 {
		t.Error("no postcard overhead recorded")
	}
}

func TestSNMPSeesVisibleMissesSilent(t *testing.T) {
	n := newBlNet(t, dataplane.Config{})
	snmp := NewSNMP(n.sim, switchesOf(n.fab), sim.Millisecond)
	src, dst := n.hosts[0], n.hosts[31]
	tor := n.fab.HostPorts[src.Node.ID][0].Switch
	flow := pkt.FlowKey{SrcIP: src.Node.IP, DstIP: dst.Node.IP, SrcPort: 9, DstPort: workload.DataPort, Proto: pkt.ProtoUDP}
	// Visible drops: blackhole.
	tor.SetRouteOverride(dst.Node.IP, []int{})
	src.SendUDP(flow, 20, 724, 0)
	n.sim.Run(2 * sim.Millisecond)
	visible := snmp.DropsObserved()
	if visible != 20 {
		t.Errorf("SNMP saw %d visible drops, want 20", visible)
	}
	// Silent drops: parity error — invisible to counters.
	tor.ClearRouteOverride(dst.Node.IP)
	tor.InjectParityError(dst.Node.IP)
	src.SendUDP(flow, 20, 724, 0)
	n.sim.Run(4 * sim.Millisecond)
	snmp.Stop()
	n.sim.RunAll()
	if snmp.DropsObserved() != visible {
		t.Errorf("SNMP drop count moved on silent drops: %d → %d", visible, snmp.DropsObserved())
	}
	if len(snmp.Detected()) != 0 {
		t.Error("SNMP claimed flow-level detections")
	}
	if snmp.OverheadBytes() == 0 {
		t.Error("SNMP overhead not accounted")
	}
}

func TestPingmeshProbesAndDetectsSlowPaths(t *testing.T) {
	n := newBlNet(t, dataplane.Config{QueueLimitBytes: 1 << 20})
	// Probe among 4 hosts only (full mesh of 32 is heavy for a unit
	// test).
	pm := NewPingmesh(n.sim, n.hosts[:4], n.routes, sim.Millisecond, 50*sim.Microsecond)
	n.sim.Run(5*sim.Millisecond + 500*sim.Microsecond)
	sent, echoed := pm.SentEchoed()
	if sent == 0 || echoed == 0 {
		t.Fatalf("probes sent=%d echoed=%d", sent, echoed)
	}
	if echoed != sent {
		t.Errorf("idle fabric: %d of %d probes echoed", echoed, sent)
	}
	if len(pm.Slow) != 0 {
		t.Errorf("slow probes on idle fabric: %d", len(pm.Slow))
	}
	// Congest host 0's ToR downlink with an incast while probing.
	workload.Incast(n.sim, n.hosts[8:24], n.hosts[0], 1<<20, 1000, 0)
	n.sim.Run(40 * sim.Millisecond)
	pm.Stop()
	n.sim.RunAll()
	if len(pm.Slow)+len(pm.Lost) == 0 {
		t.Error("pingmesh saw nothing during a heavy incast")
	}
	if len(pm.Detected()) != 0 {
		t.Error("pingmesh claimed flow-level detections")
	}
}

func switchesOf(fab *dataplane.Fabric) []*dataplane.Switch {
	var out []*dataplane.Switch
	fab.EachSwitch(func(sw *dataplane.Switch) { out = append(out, sw) })
	return out
}
