package baselines

import (
	"netseer/internal/dataplane"
	"netseer/internal/host"
	"netseer/internal/pkt"
	"netseer/internal/sim"
	"netseer/internal/topo"
)

// Pingmesh sends full-mesh probes between all hosts once per interval
// (the paper configures one round per second). A slow or lost probe says
// "something, somewhere on this source-destination path" — no flow
// attribution, and only for the instants probes are in flight, which is
// why it explains so little (§5.2: detects the existence of 0.02% of
// congestion events).
type Pingmesh struct {
	sim      *sim.Simulator
	hosts    []*host.Host
	routes   *topo.Routes
	interval sim.Time
	rttThr   sim.Time

	// Observations: per probe outcome.
	Slow []ProbeObs
	Lost []ProbeObs
	sent uint64
	echo uint64

	inflight map[probeKey]probeState
	stopped  bool
}

// ProbeObs is one anomalous probe observation.
type ProbeObs struct {
	At       sim.Time
	Src, Dst uint32
	RTT      sim.Time // 0 for lost probes
}

type probeKey struct {
	src, dst uint32
	round    uint64
}

type probeState struct {
	sentAt sim.Time
}

// NewPingmesh builds the prober over the given hosts. rttThr classifies a
// probe as slow.
func NewPingmesh(s *sim.Simulator, hosts []*host.Host, routes *topo.Routes, interval, rttThr sim.Time) *Pingmesh {
	p := &Pingmesh{
		sim: s, hosts: hosts, routes: routes,
		interval: interval, rttThr: rttThr,
		inflight: make(map[probeKey]probeState),
	}
	for _, h := range hosts {
		h := h
		h.OnProbeEcho(func(peer uint32, rtt sim.Time) { p.onEcho(h.Node.IP, peer, rtt) })
	}
	p.scheduleRound(0)
	return p
}

// Name implements System.
func (p *Pingmesh) Name() string { return "pingmesh" }

// Stop halts probing.
func (p *Pingmesh) Stop() { p.stopped = true }

func (p *Pingmesh) scheduleRound(round uint64) {
	p.sim.Schedule(p.interval, func() {
		if p.stopped {
			return
		}
		p.probeAll(round)
		// Probes unanswered by the next round are lost.
		p.sim.Schedule(p.interval/2, func() { p.reap(round) })
		p.scheduleRound(round + 1)
	})
}

func (p *Pingmesh) probeAll(round uint64) {
	// Spread the full mesh across the first half of the round (production
	// Pingmesh paces its probes; a synchronized burst would itself be a
	// microburst).
	n := len(p.hosts) * (len(p.hosts) - 1)
	if n == 0 {
		return
	}
	spread := p.interval / 2
	idx := 0
	for _, src := range p.hosts {
		for _, dst := range p.hosts {
			if src == dst {
				continue
			}
			src, dst := src, dst
			offset := spread * sim.Time(idx) / sim.Time(n)
			idx++
			p.sim.Schedule(offset, func() {
				if p.stopped {
					return
				}
				p.sent++
				p.inflight[probeKey{src.Node.IP, dst.Node.IP, round}] = probeState{sentAt: p.sim.Now()}
				src.SendProbe(dst.Node.IP)
			})
		}
	}
}

func (p *Pingmesh) onEcho(src, dst uint32, rtt sim.Time) {
	p.echo++
	// Clear whichever round this answers (oldest first).
	for k := range p.inflight {
		if k.src == src && k.dst == dst {
			delete(p.inflight, k)
			break
		}
	}
	if rtt >= p.rttThr {
		p.Slow = append(p.Slow, ProbeObs{At: p.sim.Now(), Src: src, Dst: dst, RTT: rtt})
	}
}

func (p *Pingmesh) reap(round uint64) {
	for k, st := range p.inflight {
		if k.round == round {
			p.Lost = append(p.Lost, ProbeObs{At: st.sentAt, Src: k.src, Dst: k.dst})
			delete(p.inflight, k)
		}
	}
}

// Sent and Echoed report probe volume.
func (p *Pingmesh) SentEchoed() (sent, echoed uint64) { return p.sent, p.echo }

// CoversCongestion reports whether any anomalous probe's path crossed the
// given switch's congested egress port within the window around t — the
// "existence detection" credit used when scoring Pingmesh against ground
// truth. Requiring the exact egress port reflects that a slow probe only
// implicates the queue it actually waited in.
func (p *Pingmesh) CoversCongestion(fab *dataplane.Fabric, swID uint16, port uint8, t, window sim.Time) bool {
	check := func(obs ProbeObs) bool {
		if obs.At < t-window || obs.At > t+window {
			return false
		}
		srcNode, ok := fab.Topo.NodeByIP(obs.Src)
		if !ok {
			return false
		}
		flow := pkt.FlowKey{SrcIP: obs.Src, DstIP: obs.Dst, SrcPort: 62000, DstPort: host.ProbeEchoPort, Proto: pkt.ProtoUDP}
		path, err := p.routes.PathOf(srcNode.ID, flow)
		if err != nil {
			return false
		}
		for i, nid := range path {
			sw, ok := fab.Switches[nid]
			if !ok || sw.ID != swID || i+1 >= len(path) {
				continue
			}
			// The probe's egress port at this switch is the one facing
			// the next node on its path.
			for _, pt := range fab.Topo.Ports(nid) {
				if pt.Peer == path[i+1] && uint8(pt.Num) == port {
					return true
				}
			}
		}
		return false
	}
	for _, obs := range p.Slow {
		if check(obs) {
			return true
		}
	}
	for _, obs := range p.Lost {
		if check(obs) {
			return true
		}
	}
	return false
}

// Detected implements System: empty — probes carry no application-flow
// identity.
func (p *Pingmesh) Detected() Detections { return make(Detections) }

// OverheadBytes implements System: 64 B per probe plus the echo.
func (p *Pingmesh) OverheadBytes() uint64 { return (p.sent + p.echo) * 64 }
