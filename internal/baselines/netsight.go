package baselines

import (
	"netseer/internal/dataplane"
	"netseer/internal/fevent"
	"netseer/internal/pkt"
	"netseer/internal/sim"
)

// NetSight mirrors every packet at every hop as a 64-byte postcard with
// forwarding metadata (ports, latency). From the complete postcard
// archive the collector reconstructs every flow event — full coverage —
// at the cost of per-packet-per-hop monitoring traffic (~18% bandwidth
// overhead in the paper's testbed, three orders of magnitude above
// NetSeer).
type NetSight struct {
	dataplane.NopMonitor
	congThr sim.Time

	detected  Detections
	overhead  uint64
	postcards uint64

	// pathSeen reconstructs path-change events from postcards.
	pathSeen map[nsPathKey]nsPorts
}

type nsPathKey struct {
	sw   uint16
	flow pkt.FlowKey
}

type nsPorts struct{ in, out uint8 }

// NewNetSight creates the NetSight baseline.
func NewNetSight(congThr sim.Time) *NetSight {
	return &NetSight{
		congThr:  congThr,
		detected: make(Detections),
		pathSeen: make(map[nsPathKey]nsPorts),
	}
}

// Name implements System.
func (n *NetSight) Name() string { return "netsight" }

// OnIngress emits one postcard per packet per hop.
func (n *NetSight) OnIngress(sw *dataplane.Switch, p *pkt.Packet, port int) {
	if p.Kind != pkt.KindData && p.Kind != pkt.KindProbe {
		return
	}
	n.postcards++
	n.overhead += MirrorTruncation
}

// OnDrop: the postcard archive shows the packet's last hop — drops are
// fully attributable, including the reason in the final postcard's
// metadata.
func (n *NetSight) OnDrop(sw *dataplane.Switch, p *pkt.Packet, code fevent.DropCode, visible bool) {
	if p.Kind != pkt.KindData {
		return
	}
	n.detected.add(sw.ID, fevent.TypeDrop, p.Flow, code)
}

// OnDequeue: postcards carry per-hop latency, so congestion reconstructs
// exactly.
func (n *NetSight) OnDequeue(sw *dataplane.Switch, p *pkt.Packet, port, queue int, qdelay sim.Time) {
	if p.Kind != pkt.KindData || qdelay < n.congThr {
		return
	}
	n.detected.add(sw.ID, fevent.TypeCongestion, p.Flow, fevent.DropNone)
}

// OnEgress reconstructs paths from (ingress, egress) metadata.
func (n *NetSight) OnEgress(sw *dataplane.Switch, p *pkt.Packet, port int) {
	if p.Kind != pkt.KindData {
		return
	}
	key := nsPathKey{sw.ID, p.Flow}
	ports := nsPorts{uint8(p.IngressPort), uint8(port)}
	if prev, ok := n.pathSeen[key]; !ok || prev != ports {
		n.pathSeen[key] = ports
		n.detected.addPath(sw.ID, p.Flow, ports.in, ports.out)
	}
}

// OnLinkLost reconstructs inter-switch drops: the postcard archive shows
// a packet's last hop, so a frame destroyed or damaged in flight appears
// as a missing next-hop postcard, attributable to the upstream switch.
// Register with dataplane.Fabric.AddLinkLossHook.
func (n *NetSight) OnLinkLost(upstream *dataplane.Switch, p *pkt.Packet, corrupted bool) {
	if upstream == nil || p.Kind != pkt.KindData {
		return
	}
	n.detected.add(upstream.ID, fevent.TypeDrop, p.Flow, fevent.DropInterSwitch)
}

// Postcards returns the number of postcards generated (for the CPU-cost
// comparison: one core processes 240 kpps of postcards).
func (n *NetSight) Postcards() uint64 { return n.postcards }

// Detected implements System.
func (n *NetSight) Detected() Detections { return n.detected }

// OverheadBytes implements System.
func (n *NetSight) OverheadBytes() uint64 { return n.overhead }
