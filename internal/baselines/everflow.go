package baselines

import (
	"netseer/internal/dataplane"
	"netseer/internal/fevent"
	"netseer/internal/pkt"
	"netseer/internal/sim"
)

// EverFlow mirrors "match-and-mirror" packets — the first packet of every
// flow (the SYN analogue) — and runs on-demand packet telemetry over a
// rotating watchlist of 1,000 random flows re-chosen every minute (§5
// testbed configuration). Events are only visible for watched flows while
// they are watched, which is why its coverage is <1%.
type synKey struct {
	sw   uint16
	flow pkt.FlowKey
}

type EverFlow struct {
	dataplane.NopMonitor
	sim     *sim.Simulator
	congThr sim.Time

	// WatchSize and Rotation configure the on-demand telemetry.
	WatchSize int
	Rotation  sim.Time

	seenFlows   map[pkt.FlowKey]bool // flows whose "SYN" was mirrored
	synMirrored map[synKey]bool      // per-switch first-packet observations
	watched     map[pkt.FlowKey]bool
	candidate   []pkt.FlowKey
	rng         *sim.Stream

	detected Detections
	overhead uint64
	stopped  bool
}

// NewEverFlow creates the EverFlow baseline on the given simulator.
// rotation <= 0 uses the paper's one-minute watchlist refresh.
func NewEverFlow(s *sim.Simulator, congThr sim.Time, rotation sim.Time, seed uint64) *EverFlow {
	if rotation <= 0 {
		rotation = 60 * sim.Second
	}
	e := &EverFlow{
		sim: s, congThr: congThr,
		WatchSize: 1000, Rotation: rotation,
		seenFlows:   make(map[pkt.FlowKey]bool),
		synMirrored: make(map[synKey]bool),
		watched:     make(map[pkt.FlowKey]bool),
		detected:    make(Detections),
		rng:         sim.NewStream(seed, "everflow"),
	}
	e.scheduleRotation()
	return e
}

// Name implements System.
func (e *EverFlow) Name() string { return "everflow" }

// Stop halts watchlist rotation (lets simulations drain).
func (e *EverFlow) Stop() { e.stopped = true }

func (e *EverFlow) scheduleRotation() {
	e.sim.Schedule(e.Rotation, func() {
		if e.stopped {
			return
		}
		e.rotate()
		e.scheduleRotation()
	})
}

// rotate picks a fresh random watchlist from the flows seen so far.
func (e *EverFlow) rotate() {
	e.watched = make(map[pkt.FlowKey]bool, e.WatchSize)
	if len(e.candidate) == 0 {
		return
	}
	for i := 0; i < e.WatchSize; i++ {
		e.watched[e.candidate[e.rng.Intn(len(e.candidate))]] = true
	}
}

// OnIngress mirrors flow-start packets and telemetry for watched flows.
func (e *EverFlow) OnIngress(sw *dataplane.Switch, p *pkt.Packet, port int) {
	if p.Kind != pkt.KindData {
		return
	}
	if !e.seenFlows[p.Flow] {
		e.seenFlows[p.Flow] = true
		e.candidate = append(e.candidate, p.Flow)
		e.overhead += MirrorTruncation // SYN mirror
	}
	if e.watched[p.Flow] {
		e.overhead += MirrorTruncation
	}
}

// OnEgress records path observations: only the first packet of a flow at
// a switch (the mirrored SYN) and every packet of watched flows carry the
// forwarding metadata to the collector, so a mid-flow re-path of an
// unwatched flow is invisible.
func (e *EverFlow) OnEgress(sw *dataplane.Switch, p *pkt.Packet, port int) {
	if p.Kind != pkt.KindData {
		return
	}
	key := synKey{sw.ID, p.Flow}
	if !e.synMirrored[key] {
		e.synMirrored[key] = true
		e.detected.addPath(sw.ID, p.Flow, uint8(p.IngressPort), uint8(port))
		return
	}
	if e.watched[p.Flow] {
		e.detected.addPath(sw.ID, p.Flow, uint8(p.IngressPort), uint8(port))
	}
}

// OnDrop is visible only for watched flows (their per-hop telemetry
// reveals the missing hop).
func (e *EverFlow) OnDrop(sw *dataplane.Switch, p *pkt.Packet, code fevent.DropCode, visible bool) {
	if p.Kind != pkt.KindData || !e.watched[p.Flow] {
		return
	}
	e.detected.add(sw.ID, fevent.TypeDrop, p.Flow, code)
}

// OnDequeue detects congestion for watched flows.
func (e *EverFlow) OnDequeue(sw *dataplane.Switch, p *pkt.Packet, port, queue int, qdelay sim.Time) {
	if p.Kind != pkt.KindData || qdelay < e.congThr || !e.watched[p.Flow] {
		return
	}
	e.detected.add(sw.ID, fevent.TypeCongestion, p.Flow, fevent.DropNone)
}

// Detected implements System.
func (e *EverFlow) Detected() Detections { return e.detected }

// OverheadBytes implements System.
func (e *EverFlow) OverheadBytes() uint64 { return e.overhead }
