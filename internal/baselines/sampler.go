package baselines

import (
	"fmt"

	"netseer/internal/dataplane"
	"netseer/internal/fevent"
	"netseer/internal/pkt"
	"netseer/internal/sim"
)

// Sampler is 1:N packet sampling (sFlow-style): every Nth packet entering
// a switch is mirrored (truncated) to the collector. A sampled packet
// reveals its flow's presence at the switch; if the *sampled* packet also
// happened to be congested at dequeue, the congestion is visible. Drops
// are invisible: sampling happens at ingress, and the sampled copy carries
// no fate information (§5.2 "sampling cannot capture packet drops").
type Sampler struct {
	dataplane.NopMonitor
	N int

	counter  map[uint16]uint64 // per-switch packet counter
	sampled  map[sampleKey]bool
	detected Detections
	overhead uint64
	congThr  sim.Time
}

type sampleKey struct {
	sw   uint16
	flow pkt.FlowKey
}

// NewSampler creates a 1:n sampler with the given congestion threshold
// (same definition as ground truth).
func NewSampler(n int, congThr sim.Time) *Sampler {
	if n <= 0 {
		panic("baselines: sampling ratio must be positive")
	}
	return &Sampler{
		N: n, counter: make(map[uint16]uint64),
		sampled:  make(map[sampleKey]bool),
		detected: make(Detections), congThr: congThr,
	}
}

// Name implements System.
func (s *Sampler) Name() string { return fmt.Sprintf("sampling-1:%d", s.N) }

// OnIngress samples every Nth packet (overhead accounting; the sampled
// copy's forwarding metadata is recorded at egress).
func (s *Sampler) OnIngress(sw *dataplane.Switch, p *pkt.Packet, port int) {
	s.counter[sw.ID]++
	if s.counter[sw.ID]%uint64(s.N) != 0 {
		return
	}
	s.overhead += MirrorTruncation
	s.sampled[sampleKey{sw.ID, p.Flow}] = true
}

// OnEgress reveals the sampled packet's (ingress, egress) ports — a path
// observation for its flow. The egress applies the same 1:N subsampling.
func (s *Sampler) OnEgress(sw *dataplane.Switch, p *pkt.Packet, port int) {
	if p.Kind != pkt.KindData {
		return
	}
	key := sw.ID + 2<<14
	s.counter[key]++
	if s.counter[key]%uint64(s.N) != 0 {
		return
	}
	s.detected.addPath(sw.ID, p.Flow, uint8(p.IngressPort), uint8(port))
}

// OnDequeue detects congestion only for packets of flows whose sample at
// this switch happened to coincide: approximate the real mechanism by
// crediting congestion when the congested packet itself is the sampled
// one (1-in-N chance).
func (s *Sampler) OnDequeue(sw *dataplane.Switch, p *pkt.Packet, port, queue int, qdelay sim.Time) {
	if qdelay < s.congThr || p.Kind != pkt.KindData {
		return
	}
	// The dequeue sees the same 1:N subsampling: only the packet that was
	// selected at ingress carries telemetry. Model: this packet was
	// sampled iff the ingress counter selected it; approximate with an
	// independent per-switch counter over congested packets.
	s.counter[sw.ID+1<<15]++
	if s.counter[sw.ID+1<<15]%uint64(s.N) == 0 {
		s.detected.add(sw.ID, fevent.TypeCongestion, p.Flow, fevent.DropNone)
	}
}

// Detected implements System.
func (s *Sampler) Detected() Detections { return s.detected }

// OverheadBytes implements System.
func (s *Sampler) OverheadBytes() uint64 { return s.overhead }
