package oracle

// Minimize greedily shrinks a failing scenario while the failure
// persists: it repeatedly tries the simplification candidates below and
// keeps any that still fails, until a fixed point. The result is the
// replayable repro committed under testdata/repros/. failing must be
// deterministic (scenarios are).
func Minimize(sc Scenario, failing func(Scenario) bool) Scenario {
	if !failing(sc) {
		return sc
	}
	for changed := true; changed; {
		changed = false
		for _, cand := range shrinks(sc) {
			cand = cand.Normalize()
			if cand == sc {
				continue
			}
			if failing(cand) {
				sc = cand
				changed = true
				break
			}
		}
	}
	return sc
}

// shrinks proposes one-step simplifications of sc, most aggressive first:
// drop whole fault classes, shrink the topology, then walk numeric fields
// toward their minima (caches toward generous defaults, workload and
// fault intensity toward zero).
func shrinks(sc Scenario) []Scenario {
	var out []Scenario
	try := func(mut func(*Scenario)) {
		c := sc
		mut(&c)
		out = append(out, c)
	}

	// Whole fault classes off.
	try(func(c *Scenario) { c.AggIncast = false })
	try(func(c *Scenario) { c.ZipfSkew = 0 })
	try(func(c *Scenario) { c.Elephants = 0 })
	try(func(c *Scenario) { c.Pause = false })
	try(func(c *Scenario) { c.Incast = false })
	try(func(c *Scenario) { c.PathFlip = false })
	try(func(c *Scenario) { c.ACLDeny = false })
	try(func(c *Scenario) { c.Parity = false })
	try(func(c *Scenario) { c.Blackhole = false })
	try(func(c *Scenario) { c.CorruptPct = 0 })
	try(func(c *Scenario) { c.LossPct = 0 })
	try(func(c *Scenario) { c.LossBurst = 0 })

	// Smaller topology.
	if sc.Topo != TopoLine2 {
		try(func(c *Scenario) { c.Topo = TopoLine2 })
		try(func(c *Scenario) { c.Topo = TopoLine3 })
	}

	// Generous caches (removes collision churn and ring overwrites from
	// the picture if they are irrelevant to the failure).
	if sc.GroupSlots < 4096 {
		try(func(c *Scenario) { c.GroupSlots = 4096 })
	}
	if sc.GroupC < 128 {
		try(func(c *Scenario) { c.GroupC = 128 })
	}
	if sc.RingSlots < 1024 {
		try(func(c *Scenario) { c.RingSlots = 1024 })
	}

	// Halve numeric intensity toward the minimum.
	halve8 := func(v uint8, min uint8) uint8 {
		if v <= min {
			return min
		}
		h := v / 2
		if h < min {
			h = min
		}
		return h
	}
	try(func(c *Scenario) { c.Flows = halve8(c.Flows, 1) })
	try(func(c *Scenario) { c.Pkts = halve8(c.Pkts, 1) })
	try(func(c *Scenario) { c.LossBurst = halve8(c.LossBurst, 0) })
	try(func(c *Scenario) { c.LossPct = halve8(c.LossPct, 0) })
	try(func(c *Scenario) { c.CorruptPct = halve8(c.CorruptPct, 0) })
	try(func(c *Scenario) { c.ZipfSkew = halve8(c.ZipfSkew, 0) })
	try(func(c *Scenario) { c.Elephants = halve8(c.Elephants, 0) })
	try(func(c *Scenario) { c.Seed = 0 })
	return out
}
