package oracle

import (
	"fmt"
	"sort"
	"time"

	"netseer/internal/collector"
	"netseer/internal/dataplane"
	"netseer/internal/faultconn"
	"netseer/internal/fevent"
	"netseer/internal/pkt"
	"netseer/internal/sketch"
)

// CheckResult is one invariant checker's outcome.
type CheckResult struct {
	Claim      string
	Checked    int // facts examined (ground-truth keys, events, batches…)
	Violations []string
}

// OK reports whether the checker passed.
func (c CheckResult) OK() bool { return len(c.Violations) == 0 }

// Report holds every checker's outcome for one scenario.
type Report struct {
	Sc      Scenario
	Results []CheckResult
}

// OK reports whether every checker passed.
func (r *Report) OK() bool {
	for _, c := range r.Results {
		if !c.OK() {
			return false
		}
	}
	return true
}

// Violations flattens the failures, prefixed by claim name.
func (r *Report) Violations() []string {
	var out []string
	for _, c := range r.Results {
		for _, v := range c.Violations {
			out = append(out, c.Claim+": "+v)
		}
	}
	return out
}

// maxViolations bounds the failure detail per checker; past this the count
// matters, not another page of keys.
const maxViolations = 12

// blind reports whether a drop code is invisible to NetSeer by design
// (§3.7: failed ASIC/MMU destroy packets before any hook runs; only
// syslog self-checks can tell the operator).
func blind(c fevent.DropCode) bool {
	return c == fevent.DropASICFailure || c == fevent.DropMMUFailure
}

// storedView indexes the collector store's contents for reconciliation.
type storedView struct {
	drop  map[dataplane.FlowEventKey]bool // non-ACL drop events
	cong  map[dataplane.FlowEventKey]bool
	pause map[dataplane.FlowEventKey]bool
	path  map[dataplane.FlowEventKey]bool
	acl   map[aclKey]uint16 // max stored count per (switch, rule)

	// Sketch-event indexes, keyed the same way the ground-truth ledgers
	// are so the sketch checker can reconcile them directly.
	hh    map[dataplane.GTSwitchFlow]uint16 // max stored heavy-hitter count
	churn map[dataplane.GTSwitchFlow]bool   // flows with any stored top-K churn
	spike map[dataplane.GTLinkWindow]uint16 // max stored spike count per link-window

	// maxCount is the highest stored count per key — the exact packet
	// total when the key's switch had zero evictions, a lower bound
	// otherwise.
	maxCount map[dataplane.FlowEventKey]uint16
	// seqs records each (switch, dedup-key)'s stored counts in delivery
	// order, for the fpelim duplicate check.
	seqs  map[swKey][]uint16
	order []swKey

	events []fevent.Event
}

type aclKey struct {
	sw   uint16
	rule uint8
}

type swKey struct {
	sw  uint16
	key fevent.Key
}

func eventKey(e *fevent.Event) dataplane.FlowEventKey {
	k := dataplane.FlowEventKey{SwitchID: e.SwitchID, Type: e.Type, Flow: e.Flow, Code: e.DropCode}
	if e.Type == fevent.TypePathChange {
		k.In, k.Out = e.IngressPort, e.EgressPort
	}
	if e.Type != fevent.TypeDrop {
		k.Code = 0
	}
	return k
}

func newStoredView(store *collector.Store) *storedView {
	v := &storedView{
		drop:     make(map[dataplane.FlowEventKey]bool),
		cong:     make(map[dataplane.FlowEventKey]bool),
		pause:    make(map[dataplane.FlowEventKey]bool),
		path:     make(map[dataplane.FlowEventKey]bool),
		acl:      make(map[aclKey]uint16),
		hh:       make(map[dataplane.GTSwitchFlow]uint16),
		churn:    make(map[dataplane.GTSwitchFlow]bool),
		spike:    make(map[dataplane.GTLinkWindow]uint16),
		maxCount: make(map[dataplane.FlowEventKey]uint16),
		seqs:     make(map[swKey][]uint16),
	}
	v.events = store.Query(collector.Filter{})
	for i := range v.events {
		e := &v.events[i]
		sk := swKey{e.SwitchID, e.Key()}
		if _, seen := v.seqs[sk]; !seen {
			v.order = append(v.order, sk)
		}
		v.seqs[sk] = append(v.seqs[sk], e.Count)
		if e.Type == fevent.TypeDrop && e.DropCode == fevent.DropACLDeny {
			ak := aclKey{e.SwitchID, e.ACLRule}
			if e.Count > v.acl[ak] {
				v.acl[ak] = e.Count
			}
			continue
		}
		k := eventKey(e)
		switch e.Type {
		case fevent.TypeDrop:
			v.drop[k] = true
		case fevent.TypeCongestion:
			v.cong[k] = true
		case fevent.TypePause:
			v.pause[k] = true
		case fevent.TypePathChange:
			v.path[k] = true
		case fevent.TypeHeavyHitter:
			fk := dataplane.GTSwitchFlow{SwitchID: e.SwitchID, Flow: e.Flow}
			if e.Count > v.hh[fk] {
				v.hh[fk] = e.Count
			}
		case fevent.TypeTopKChurn:
			v.churn[dataplane.GTSwitchFlow{SwitchID: e.SwitchID, Flow: e.Flow}] = true
		case fevent.TypeAggSpike:
			lk := dataplane.GTLinkWindow{SwitchID: e.SwitchID, Port: e.EgressPort, Window: e.Window}
			if e.Count > v.spike[lk] {
				v.spike[lk] = e.Count
			}
		}
		if e.Count > v.maxCount[k] {
			v.maxCount[k] = e.Count
		}
	}
	return v
}

// truthACL groups ground-truth ACL-deny drops at rule granularity.
func truthACL(gt *dataplane.GroundTruth) map[aclKey]int {
	out := make(map[aclKey]int)
	for _, d := range gt.Drops {
		if d.Code == fevent.DropACLDeny {
			out[aclKey{d.SwitchID, d.ACLRule}]++
		}
	}
	return out
}

// Check runs the four in-process invariant checkers (completeness,
// soundness, encoding, recovery) against one run's artifacts. The fifth
// (delivery) needs a real TCP channel; run it via CheckDelivery.
func Check(res *Result) *Report {
	v := newStoredView(res.Store)
	return &Report{
		Sc: res.Sc,
		Results: []CheckResult{
			checkCompleteness(res, v),
			checkSoundness(res, v),
			checkEncoding(res),
			checkRecovery(res, v),
			checkSketch(res, v),
		},
	}
}

// CheckAll runs every checker including the TCP delivery replay.
func CheckAll(res *Result) *Report {
	r := Check(res)
	r.Results = append(r.Results, CheckDelivery(res))
	return r
}

// checkCompleteness verifies claim 1 (§3.4 Algorithm 1, §3.3): zero false
// negatives. Every ground-truth flow event NetSeer can see must be
// covered by a stored event, and where the group cache had no evictions
// the stored packet counter must equal the ground-truth packet count
// exactly. Capacity-loss counters must be zero (the harness budgets them
// out) except ring overwrites, which relax only the inter-switch clause.
func checkCompleteness(res *Result, v *storedView) CheckResult {
	c := CheckResult{Claim: "completeness"}
	fail := func(format string, args ...any) {
		if len(c.Violations) < maxViolations {
			c.Violations = append(c.Violations, fmt.Sprintf(format, args...))
		} else if len(c.Violations) == maxViolations {
			c.Violations = append(c.Violations, "… more violations elided")
		}
	}
	st := res.Stats
	if st.LostInternalPort != 0 || st.LostMMURedirect != 0 || st.LostStackOverflow != 0 {
		fail("capacity losses under unlimited budget: internalPort=%d mmuRedirect=%d stackOverflow=%d",
			st.LostInternalPort, st.LostMMURedirect, st.LostStackOverflow)
	}

	countExact := func(k dataplane.FlowEventKey, gtCount int) {
		if res.Evictions[k.SwitchID] != 0 || gtCount > 0xffff {
			// Evictions split the key across aggregation runs whose
			// intermediate finals are not reconstructible (fpelim
			// legitimately suppresses re-reports); the soundness checker
			// still bounds the stored count from above.
			return
		}
		if got := int(v.maxCount[k]); got != gtCount {
			fail("count mismatch (no evictions on sw %d): %v stored=%d truth=%d", k.SwitchID, k, got, gtCount)
		}
	}

	interSwitchTruth := 0
	for k, n := range res.GT.DropFlowEvents(func(code fevent.DropCode) bool {
		return !blind(code) && code != fevent.DropACLDeny
	}) {
		c.Checked++
		if k.Code == fevent.DropInterSwitch || k.Code == fevent.DropInterCard {
			interSwitchTruth += n
			if res.BySwitch[k.SwitchID].LostRingOverwrite == 0 && !v.drop[k] {
				fail("missed drop: %v ×%d (ring had no overwrites)", k, n)
			}
			if res.BySwitch[k.SwitchID].LostRingOverwrite == 0 {
				countExact(k, n)
			}
			continue
		}
		if !v.drop[k] {
			fail("missed drop: %v ×%d", k, n)
			continue
		}
		countExact(k, n)
	}

	// Packet-level identity for silent drops: every lost packet is either
	// recovered from the ring or accounted as a ring overwrite.
	if got := int(st.InterSwitchFound + st.LostRingOverwrite); got != interSwitchTruth {
		fail("inter-switch packet identity: recovered=%d + overwritten=%d != truth=%d",
			st.InterSwitchFound, st.LostRingOverwrite, interSwitchTruth)
	}

	for ak, n := range truthACL(res.GT) {
		c.Checked++
		want := n
		if want > 0xffff {
			want = 0xffff
		}
		if got := int(v.acl[ak]); got != want {
			fail("ACL rule %d on sw %d: stored count %d, truth %d", ak.rule, ak.sw, got, want)
		}
	}
	for k, n := range res.GT.CongestionFlowEvents() {
		c.Checked++
		if !v.cong[k] {
			fail("missed congestion: %v ×%d", k, n)
			continue
		}
		countExact(k, n)
	}
	for k, n := range res.GT.PauseFlowEvents() {
		c.Checked++
		if !v.pause[k] {
			fail("missed pause: %v ×%d", k, n)
			continue
		}
		countExact(k, n)
	}
	for k := range res.GT.PathChangeFlowEvents(false) {
		c.Checked++
		if !v.path[k] {
			fail("missed path change: %v", k)
		}
	}
	return c
}

// checkSoundness verifies claim 2 (§3.4, §3.6): every stored event
// corresponds to something that really happened — false positives only
// ever arise from group-cache collision churn, and fpelim removes all of
// them (no stored duplicate carries a non-advancing counter), so stored
// counts never exceed ground truth.
func checkSoundness(res *Result, v *storedView) CheckResult {
	c := CheckResult{Claim: "soundness"}
	fail := func(format string, args ...any) {
		if len(c.Violations) < maxViolations {
			c.Violations = append(c.Violations, fmt.Sprintf(format, args...))
		} else if len(c.Violations) == maxViolations {
			c.Violations = append(c.Violations, "… more violations elided")
		}
	}
	truthDrop := res.GT.DropFlowEvents(nil)
	truthCong := res.GT.CongestionFlowEvents()
	truthPause := res.GT.PauseFlowEvents()
	truthPath := res.GT.PathChangeFlowEvents(false)
	truthRule := truthACL(res.GT)

	counted := make(map[dataplane.FlowEventKey]bool)
	for i := range v.events {
		e := &v.events[i]
		c.Checked++
		switch e.Type {
		case fevent.TypeDrop:
			if blind(e.DropCode) {
				fail("event for a NetSeer-blind drop code stored: %v", e)
				continue
			}
			if e.DropCode == fevent.DropACLDeny {
				ak := aclKey{e.SwitchID, e.ACLRule}
				n := truthRule[ak]
				if n == 0 {
					fail("phantom ACL report: rule %d on sw %d never denied anything", e.ACLRule, e.SwitchID)
				} else if int(e.Count) > n && n <= 0xffff {
					fail("ACL overcount: rule %d on sw %d count=%d truth=%d", e.ACLRule, e.SwitchID, e.Count, n)
				}
				continue
			}
			k := eventKey(e)
			n, ok := truthDrop[k]
			if !ok {
				fail("phantom drop: %v", e)
				continue
			}
			if !counted[k] && int(v.maxCount[k]) > n {
				counted[k] = true
				fail("drop overcount: %v stored=%d truth=%d", k, v.maxCount[k], n)
			}
		case fevent.TypeCongestion:
			k := eventKey(e)
			n, ok := truthCong[k]
			if !ok {
				fail("phantom congestion: %v", e)
				continue
			}
			if !counted[k] && int(v.maxCount[k]) > n {
				counted[k] = true
				fail("congestion overcount: %v stored=%d truth=%d", k, v.maxCount[k], n)
			}
		case fevent.TypePause:
			k := eventKey(e)
			n, ok := truthPause[k]
			if !ok {
				fail("phantom pause: %v", e)
				continue
			}
			if !counted[k] && int(v.maxCount[k]) > n {
				counted[k] = true
				fail("pause overcount: %v stored=%d truth=%d", k, v.maxCount[k], n)
			}
		case fevent.TypePathChange:
			if truthPath[eventKey(e)] == 0 {
				fail("phantom path change: %v", e)
			}
		case fevent.TypeHeavyHitter, fevent.TypeTopKChurn:
			// Estimate/error bounds live in the sketch checker; soundness
			// only rejects reports for flows the switch never forwarded.
			if res.GT.FlowPkts[dataplane.GTSwitchFlow{SwitchID: e.SwitchID, Flow: e.Flow}] == 0 {
				fail("phantom sketch report: %v", e)
			}
		case fevent.TypeAggSpike:
			// Spikes aggregate per link-window; the flow field is always
			// zero and the (port, window) bin must have carried traffic.
			if e.Flow != (pkt.FlowKey{}) {
				fail("aggregate spike with non-zero flow: %v", e)
				continue
			}
			lk := dataplane.GTLinkWindow{SwitchID: e.SwitchID, Port: e.EgressPort, Window: e.Window}
			if res.GT.LinkWindowBytes[lk] == 0 {
				fail("phantom aggregate spike: %v", e)
			}
		default:
			fail("stored event with invalid type %d", e.Type)
		}
	}

	// fpelim effectiveness: a stored event whose counter did not advance
	// past its predecessor for the same identity is a §3.6 duplicate the
	// CPU should have removed. (Counter regressions are genuine new
	// aggregation episodes after an eviction, so only equality is a
	// duplicate.)
	for _, sk := range v.order {
		seq := v.seqs[sk]
		for i := 1; i < len(seq); i++ {
			if seq[i] == seq[i-1] {
				fail("unsuppressed duplicate report on sw %d: %v count=%d repeated", sk.sw, sk.key, seq[i])
				break
			}
		}
	}
	return c
}

// checkEncoding verifies claim 3 (§3.5–§3.6): every exported event
// round-trips through the 24-byte wire record bit-exactly, and its
// pre-computed data-plane hash matches a software recomputation.
func checkEncoding(res *Result) CheckResult {
	c := CheckResult{Claim: "encoding"}
	fail := func(format string, args ...any) {
		if len(c.Violations) < maxViolations {
			c.Violations = append(c.Violations, fmt.Sprintf(format, args...))
		} else if len(c.Violations) == maxViolations {
			c.Violations = append(c.Violations, "… more violations elided")
		}
	}
	for _, b := range res.Batches {
		for i := range b.Events {
			e := &b.Events[i]
			c.Checked++
			if e.SwitchID != b.SwitchID {
				fail("event switch %d in batch from switch %d", e.SwitchID, b.SwitchID)
			}
			rec := e.AppendRecord(nil)
			if len(rec) != fevent.RecordLen {
				fail("record is %d bytes, want %d: %v", len(rec), fevent.RecordLen, e)
				continue
			}
			var back fevent.Event
			if err := back.DecodeRecord(rec); err != nil {
				fail("round-trip decode failed: %v (%v)", err, e)
				continue
			}
			back.SwitchID, back.Timestamp = e.SwitchID, e.Timestamp
			if back != *e {
				fail("round-trip mismatch: sent %+v, decoded %+v", *e, back)
			}
			if got := e.Flow.Hash(); e.Hash != got {
				fail("pre-computed hash %#x != recomputed %#x for %v", e.Hash, got, e)
			}
		}
	}
	return c
}

// checkRecovery verifies claim 4 (§3.3): gap-notification replay from the
// upstream ring buffer yields exactly the silently dropped packets'
// 5-tuples — as a set, recovered flows equal the ground-truth lost flows
// (exactly when nothing was overwritten; never anything extra otherwise),
// and per-packet accounting already holds via the completeness identity.
func checkRecovery(res *Result, v *storedView) CheckResult {
	c := CheckResult{Claim: "recovery"}
	fail := func(format string, args ...any) {
		if len(c.Violations) < maxViolations {
			c.Violations = append(c.Violations, fmt.Sprintf(format, args...))
		}
	}
	truthFlows := make(map[dataplane.FlowEventKey]bool)
	for k := range res.GT.DropFlowEvents(func(code fevent.DropCode) bool {
		return code == fevent.DropInterSwitch || code == fevent.DropInterCard
	}) {
		truthFlows[k] = true
	}
	recovered := make(map[dataplane.FlowEventKey]bool)
	for k := range v.drop {
		if k.Code == fevent.DropInterSwitch || k.Code == fevent.DropInterCard {
			recovered[k] = true
		}
	}
	c.Checked = len(truthFlows)
	for k := range recovered {
		if !truthFlows[k] {
			fail("recovered a 5-tuple that was never silently dropped: %v", k)
		}
	}
	if res.Stats.LostRingOverwrite == 0 {
		for k := range truthFlows {
			if !recovered[k] {
				fail("silently dropped 5-tuple not recovered (no overwrites): %v", k)
			}
		}
	}
	// Gap detection accounting: every notification episode the trackers
	// raised was either recovered or counted as overwritten.
	if res.Stats.SeqGapsDetected > 0 && res.Stats.InterSwitchFound+res.Stats.LostRingOverwrite == 0 {
		fail("gaps detected (%d) but nothing recovered or accounted", res.Stats.SeqGapsDetected)
	}
	return c
}

// checkSketch verifies claim 6, the sketch detection family, differentially
// against the exact ground-truth ledgers. Every clause is deterministic —
// no probabilistic ε·N slack that a fuzzed scenario could legitimately
// exceed. The trick for the CMS bound: the *plain* sketch's final state is
// order-free (each cell is exactly the sum of the true counts of the flows
// hashing to it) and upper-bounds every intermediate conservative-update
// estimate of the same stream, so rebuilding it from GT.FlowPkts yields an
// exact per-flow estimate ceiling.
//
// Clauses:
//   - HH completeness: every flow whose true per-switch count reaches the
//     threshold has a stored heavy-hitter event (est ≥ true, so the
//     crossing is guaranteed; the first crossing always forwards).
//   - HH soundness: every stored heavy-hitter count is ≥ the threshold and
//     ≤ the plain-CMS ceiling rebuilt from ground truth.
//   - Top-K completeness: every flow with true count > N/K must appear in
//     stored churn events (space-saving residency guarantee + the Flush
//     snapshot).
//   - Churn soundness: count − err never exceeds the flow's true count
//     (the space-saving error invariant, end-to-end through the wire).
//   - Spike completeness + count: every (port, window) bin whose true byte
//     total reaches SpikeBytes has a stored spike whose max count equals
//     the bin's KiB total exactly.
//   - Spike soundness: no stored spike for a bin below SpikeBytes.
func checkSketch(res *Result, v *storedView) CheckResult {
	c := CheckResult{Claim: "sketch"}
	fail := func(format string, args ...any) {
		if len(c.Violations) < maxViolations {
			c.Violations = append(c.Violations, fmt.Sprintf(format, args...))
		} else if len(c.Violations) == maxViolations {
			c.Violations = append(c.Violations, "… more violations elided")
		}
	}
	cfg := res.SketchCfg
	gt := res.GT

	// Rebuild the order-free plain-CMS ceiling and per-switch stream
	// lengths from the exact ledger.
	plain := make(map[uint16]*sketch.CMS)
	totals := make(map[uint16]uint64)
	for k, n := range gt.FlowPkts {
		cms := plain[k.SwitchID]
		if cms == nil {
			cms = sketch.NewCMS(cfg.CMSWidth, cfg.CMSDepth, false)
			plain[k.SwitchID] = cms
		}
		cms.AddN(k.Flow.Hash(), n)
		totals[k.SwitchID] += n
	}

	for k, n := range gt.FlowPkts {
		c.Checked++
		if n >= uint64(cfg.HHThresholdPkts) {
			if _, ok := v.hh[k]; !ok {
				fail("missed heavy hitter: sw %d %v true=%d threshold=%d",
					k.SwitchID, k.Flow, n, cfg.HHThresholdPkts)
			}
		}
		if n*uint64(cfg.TopK) > totals[k.SwitchID] && !v.churn[k] {
			fail("flow above N/K absent from stored top-K churn: sw %d %v true=%d N=%d K=%d",
				k.SwitchID, k.Flow, n, totals[k.SwitchID], cfg.TopK)
		}
	}

	for k, got := range v.hh {
		c.Checked++
		if gt.FlowPkts[k] == 0 {
			// Already failed as a phantom by the soundness checker; skip
			// the bound clauses for a flow with no ceiling.
			continue
		}
		if uint64(cfg.HHThresholdPkts) <= 0xffff && uint32(got) < cfg.HHThresholdPkts {
			fail("heavy hitter stored below threshold: sw %d %v count=%d threshold=%d",
				k.SwitchID, k.Flow, got, cfg.HHThresholdPkts)
		}
		if bound := plain[k.SwitchID].Estimate(k.Flow.Hash()); uint64(got) > uint64(bound) {
			fail("heavy-hitter overcount: sw %d %v stored=%d plain-CMS ceiling=%d true=%d",
				k.SwitchID, k.Flow, got, bound, gt.FlowPkts[k])
		}
	}

	for i := range v.events {
		e := &v.events[i]
		if e.Type != fevent.TypeTopKChurn {
			continue
		}
		c.Checked++
		n := gt.FlowPkts[dataplane.GTSwitchFlow{SwitchID: e.SwitchID, Flow: e.Flow}]
		if n == 0 {
			continue // phantom, reported by soundness
		}
		// count − err ≤ true is the space-saving invariant; skip events
		// whose fields saturated the 16-bit wire encoding.
		if e.Count != 0xffff && e.SketchErr != 0xffff &&
			uint64(e.Count) > n+uint64(e.SketchErr) {
			fail("top-K churn overcount: sw %d %v count=%d err=%d true=%d",
				e.SwitchID, e.Flow, e.Count, e.SketchErr, n)
		}
	}

	for k, bytes := range gt.LinkWindowBytes {
		c.Checked++
		if bytes < cfg.SpikeBytes {
			continue
		}
		want := (bytes + 1023) >> 10
		if want > 0xffff {
			want = 0xffff
		}
		got, ok := v.spike[k]
		if !ok {
			fail("missed aggregate spike: sw %d port %d window %d bytes=%d threshold=%d",
				k.SwitchID, k.Port, k.Window, bytes, cfg.SpikeBytes)
		} else if uint64(got) != want {
			fail("spike count mismatch: sw %d port %d window %d stored=%d KiB truth=%d KiB (bytes=%d)",
				k.SwitchID, k.Port, k.Window, got, want, bytes)
		}
	}
	for k := range v.spike {
		c.Checked++
		if gt.LinkWindowBytes[k] < cfg.SpikeBytes {
			fail("spike stored for a bin below threshold: sw %d port %d window %d bytes=%d threshold=%d",
				k.SwitchID, k.Port, k.Window, gt.LinkWindowBytes[k], cfg.SpikeBytes)
		}
	}
	return c
}

// CheckDelivery verifies claim 5 (§3.6): replaying the exported batches
// through the reliable switch-CPU→collector channel over a fault-injected
// TCP wire is at-least-once, and (switch, seq) dedup makes the final
// store an exact duplicate-free copy of the in-process delivery.
func CheckDelivery(res *Result) CheckResult {
	c := CheckResult{Claim: "delivery"}
	fail := func(format string, args ...any) {
		if len(c.Violations) < maxViolations {
			c.Violations = append(c.Violations, fmt.Sprintf(format, args...))
		}
	}
	c.Checked = len(res.Batches)
	if len(res.Batches) == 0 {
		return c
	}
	store := collector.NewStore()
	// Scale the reset budget with the replay's wire volume so every
	// scenario suffers a comparable *number* of connection resets: a
	// fixed byte budget would make reset density grow linearly with the
	// batch count, and the sketch-heavy scenarios ship several times the
	// volume of the fault-free ones — enough that retransmit storms
	// outrun the flush deadline under -race.
	wireBytes := 0
	for _, b := range res.Batches {
		wireBytes += 32 + fevent.RecordLen*len(b.Events)
	}
	resetAfter := wireBytes / 6
	if resetAfter < 4096 {
		resetAfter = 4096
	}
	ln, err := faultconn.Listen("127.0.0.1:0", faultconn.Config{
		Seed:       int64(res.Sc.Seed),
		ResetAfter: resetAfter,
		MaxChunk:   16,
		Latency:    50 * time.Microsecond,
	})
	if err != nil {
		fail("faultconn listen: %v", err)
		return c
	}
	srv := collector.NewServerOn(store, ln, collector.ServerConfig{ReadTimeout: 300 * time.Millisecond})
	defer srv.Close()
	cl := collector.NewClientConfig(srv.Addr(), collector.ClientConfig{
		BackoffMin:   2 * time.Millisecond,
		BackoffMax:   20 * time.Millisecond,
		FlushTimeout: 30 * time.Second,
		CloseTimeout: 5 * time.Second,
	})
	for _, b := range res.Batches {
		cl.Deliver(&fevent.Batch{SwitchID: b.SwitchID, Timestamp: b.Timestamp,
			Events: append([]fevent.Event(nil), b.Events...)})
	}
	if err := cl.Flush(); err != nil {
		fail("flush through faulty channel: %v (stats %+v)", err, cl.Stats())
		return c
	}
	if err := cl.Close(); err != nil {
		fail("close: %v", err)
	}

	for _, d := range EventMultisetDiff(res.Store.Query(collector.Filter{}), store.Query(collector.Filter{}), maxViolations) {
		fail("%s", d)
	}
	st := cl.Stats()
	if st.Retransmits > 0 && store.DupBatches() == 0 && st.Reconnects == 0 {
		// Retransmits without reconnects or dedup hits would mean the
		// at-least-once channel silently re-sequenced batches.
		fail("retransmits=%d with no reconnects and no dedup hits", st.Retransmits)
	}
	return c
}

// EventMultisetDiff compares two event sets as multisets of canonical
// records and returns one message per differing key (at most max; 0
// means unlimited), sorted for stable output. An empty result means the
// candidate holds exactly the reference's events with exactly the same
// multiplicities — the equality both the delivery checker and the
// crash-recovery harness assert.
func EventMultisetDiff(reference, candidate []fevent.Event, max int) []string {
	want, got := multiset(reference), multiset(candidate)
	var diffs []string
	for k, n := range want {
		if got[k] != n {
			diffs = append(diffs, fmt.Sprintf("event stored %d× in reference but %d× in candidate: %s", n, got[k], k))
		}
	}
	for k, n := range got {
		if _, ok := want[k]; !ok {
			diffs = append(diffs, fmt.Sprintf("candidate has %d× an event the reference never saw: %s", n, k))
		}
	}
	sort.Strings(diffs)
	if max > 0 && len(diffs) > max {
		diffs = diffs[:max]
	}
	return diffs
}

// multiset renders events into count-keyed canonical strings covering
// exactly what the wire preserves: the batch switch ID plus the full
// 24-byte record. Per-event timestamps are deliberately excluded — CEBP
// records carry none (§3.5), so decode restamps every event with the
// batch timestamp and the replayed store can never match emission-time
// stamps.
func multiset(events []fevent.Event) map[string]int {
	m := make(map[string]int)
	var rec []byte
	for i := range events {
		e := &events[i]
		rec = e.AppendRecord(rec[:0])
		k := fmt.Sprintf("sw=%d %s [%x]", e.SwitchID, e.String(), rec)
		m[k]++
	}
	return m
}
