// Fabric-wide exactly-once audit: the membership-churn extension of the
// correctness oracle. The single-collector checkers audit one store
// against the acked prefix of one channel; AuditFabric audits the whole
// sharded fabric — a merged fan-out query — against everything the
// exporters delivered, across however many rebalances, crashes and
// partitions the run survived.
package oracle

import (
	"fmt"

	"netseer/internal/collector/fabric"
	"netseer/internal/fevent"
)

// AuditFabric asserts the fabric's exactly-once invariant: a full
// fan-out query over the published ring config must hold exactly the
// reference multiset — every delivered event present once, nothing
// invented, nothing double-counted by an unfenced handoff copy. A
// partial answer (an unreachable shard) is itself a finding: the merge
// is then a correct view of the answering shards but cannot witness
// exactly-once fabric-wide, so the audit refuses to pass it silently.
// Returns one message per violation (at most max; 0 means unlimited),
// empty when the invariant holds.
func AuditFabric(reference []fevent.Event, res fabric.MergedResult, max int) []string {
	var diffs []string
	if res.Partial {
		diffs = append(diffs, fmt.Sprintf(
			"fan-out was partial (%d/%d shards answered): exactly-once not auditable", res.ShardsOK, res.ShardsTotal))
	}
	diffs = append(diffs, EventMultisetDiff(reference, res.Events, max)...)
	if max > 0 && len(diffs) > max {
		diffs = diffs[:max]
	}
	return diffs
}
