// Package oracle differentially tests NetSeer's correctness claims: it
// runs the full pipeline (workload → fabric → detection → group caching →
// CEBP batching → export → collector store) over randomized topologies,
// workloads and fault schedules, then reconciles what the collector stored
// against the simulator's omniscient GroundTruth ledger with one invariant
// checker per paper claim (§3.3–§3.6):
//
//  1. completeness — every ground-truth drop/congestion/path-change/pause
//     flow event is covered by a stored event, and packet counts
//     reconcile exactly (zero false negatives, Algorithm 1).
//  2. soundness — every stored event corresponds to something that really
//     happened; false positives only ever arise from group-cache
//     collision churn and fpelim removes all of them.
//  3. encoding — every stored event round-trips through the 24-byte wire
//     record, and the pre-computed hash matches a recomputation.
//  4. recovery — gap-notification replay from the upstream ring buffer
//     yields exactly the silently dropped packets' 5-tuples.
//  5. delivery — replaying the exported batches over a faulty TCP channel
//     is at-least-once, and (switch, seq) dedup leaves the store
//     duplicate-free.
//
// The same Scenario type drives the seeded go-test matrix, the
// FuzzPipeline whole-system fuzzer, and the `repro -oracle` scorecard.
package oracle

import (
	"encoding/binary"
	"fmt"

	"netseer/internal/sim"
)

// Topology kinds a Scenario can request.
const (
	TopoLine2     = iota // host — sw0 — sw1 — host
	TopoLine3            // host — sw0 — sw1 — sw2 — host
	TopoTestbed          // the paper's 10-switch, 32-host testbed
	TopoFatTreeK4        // full K=4 fat-tree: 20 switches, 16 hosts
	topoCount
)

// Scenario is one randomized end-to-end pipeline run. Every field is
// bounded by Normalize so arbitrary fuzz bytes decode into a runnable
// configuration. The zero value is not runnable; call Normalize (Run does).
type Scenario struct {
	// Seed fixes all randomness: workload shape, fault placement, and the
	// faultconn schedule of the delivery checker.
	Seed uint64
	// Topo selects the fabric (TopoLine2 … TopoFatTreeK4).
	Topo uint8

	// GroupSlots/GroupC size the group-caching tables (§3.4); small slot
	// counts force collision churn, small C forces frequent reports.
	GroupSlots uint16
	GroupC     uint8
	// RingSlots sizes the per-port replay ring (§3.3); small rings force
	// overwrite losses the checkers must account for.
	RingSlots uint16

	// Flows/Pkts shape the background workload: Flows random host pairs
	// sending Pkts packets each.
	Flows uint8
	Pkts  uint8

	// Fault schedule. LossBurst destroys that many consecutive frames on
	// the lane link at mid-window; LossPct/CorruptPct are percent
	// probabilities of silent loss / CRC corruption on the lane link for
	// the middle half of the window.
	LossBurst  uint8
	LossPct    uint8
	CorruptPct uint8
	// Blackhole removes the route to one host for a slice of the window
	// (DropNoRoute); Parity flips its routing entry silently for another
	// slice (DropParityError); ACLDeny installs a deny rule and sends
	// matching traffic; PathFlip re-pins one destination mid-run (ECMP
	// topologies only); Incast drives a fan-in burst (MMU congestion);
	// Pause marks a lossless priority and incasts it (PFC pause events).
	Blackhole bool
	Parity    bool
	ACLDeny   bool
	PathFlip  bool
	Incast    bool
	Pause     bool

	// Sketch workload axis (the detection family beyond the paper's event
	// set). ZipfSkew, in tenths (12 → s=1.2, clamp 30), reshapes the
	// background flows into a Zipf rank-frequency distribution so a few
	// flows dominate; Elephants adds that many high-rate flows on top of
	// the background mice (clamp 8); AggIncast drives a DDoS-shaped fan-in
	// onto one receiver to force per-link aggregate byte spikes (fan-in
	// topologies only).
	ZipfSkew  uint8
	Elephants uint8
	AggIncast bool
}

// Window is the simulated measurement window of every scenario. Phases:
// warm [0, W/4), faults [W/4, 3W/4), clean trailer [3W/4, W]. The trailer
// guarantees post-fault traffic on the faulted link so sequence-gap
// detection can observe the final losses (a gap is only visible when a
// later packet arrives).
const Window = 2 * sim.Millisecond

// Normalize clamps every field into its supported range and disables
// faults the selected topology cannot express. It is idempotent.
func (sc Scenario) Normalize() Scenario {
	sc.Topo %= topoCount
	if sc.GroupSlots < 8 {
		sc.GroupSlots = 8
	}
	if sc.GroupC == 0 {
		sc.GroupC = 1
	}
	if sc.RingSlots < 16 {
		sc.RingSlots = 16
	}
	if sc.Flows == 0 {
		sc.Flows = 1
	}
	if sc.Flows > 40 {
		sc.Flows = 40
	}
	if sc.Pkts == 0 {
		sc.Pkts = 1
	}
	if sc.Pkts > 50 {
		sc.Pkts = 50
	}
	if sc.LossBurst > 60 {
		sc.LossBurst = 60
	}
	if sc.LossPct > 20 {
		sc.LossPct = 20
	}
	if sc.CorruptPct > 20 {
		sc.CorruptPct = 20
	}
	if sc.ZipfSkew > 30 {
		sc.ZipfSkew = 30
	}
	if sc.Elephants > 8 {
		sc.Elephants = 8
	}
	if sc.Topo == TopoLine2 || sc.Topo == TopoLine3 {
		// Two-host chains have no ECMP to flip and no fan-in to incast.
		sc.PathFlip = false
		sc.Incast = false
		sc.Pause = false
		sc.AggIncast = false
	}
	return sc
}

// scenarioLen is the canonical encoding length: seed(8) topo(1)
// groupSlots(2) groupC(1) ringSlots(2) flows(1) pkts(1) lossBurst(1)
// lossPct(1) corruptPct(1) flags(1) zipfSkew(1) elephants(1). Inputs
// shorter than this zero-pad (DecodeScenario), so pre-sketch corpora and
// repro files stay valid byte-for-byte.
const scenarioLen = 22

// Encode returns the canonical byte encoding of sc, the fuzzer's input
// format and the on-disk repro format.
func (sc Scenario) Encode() []byte {
	b := make([]byte, scenarioLen)
	binary.BigEndian.PutUint64(b[0:], sc.Seed)
	b[8] = sc.Topo
	binary.BigEndian.PutUint16(b[9:], sc.GroupSlots)
	b[11] = sc.GroupC
	binary.BigEndian.PutUint16(b[12:], sc.RingSlots)
	b[14] = sc.Flows
	b[15] = sc.Pkts
	b[16] = sc.LossBurst
	b[17] = sc.LossPct
	b[18] = sc.CorruptPct
	var flags uint8
	for i, on := range []bool{sc.Blackhole, sc.Parity, sc.ACLDeny, sc.PathFlip, sc.Incast, sc.Pause, sc.AggIncast} {
		if on {
			flags |= 1 << i
		}
	}
	b[19] = flags
	b[20] = sc.ZipfSkew
	b[21] = sc.Elephants
	return b
}

// DecodeScenario interprets arbitrary bytes as a Scenario (short input is
// zero-padded, excess bytes are ignored) and normalizes it, so every fuzz
// input maps to a runnable configuration.
func DecodeScenario(data []byte) Scenario {
	var b [scenarioLen]byte
	copy(b[:], data)
	flags := b[19]
	sc := Scenario{
		Seed:       binary.BigEndian.Uint64(b[0:]),
		Topo:       b[8],
		GroupSlots: binary.BigEndian.Uint16(b[9:]),
		GroupC:     b[11],
		RingSlots:  binary.BigEndian.Uint16(b[12:]),
		Flows:      b[14],
		Pkts:       b[15],
		LossBurst:  b[16],
		LossPct:    b[17],
		CorruptPct: b[18],
		Blackhole:  flags&1 != 0,
		Parity:     flags&2 != 0,
		ACLDeny:    flags&4 != 0,
		PathFlip:   flags&8 != 0,
		Incast:     flags&16 != 0,
		Pause:      flags&32 != 0,
		AggIncast:  flags&64 != 0,
		ZipfSkew:   b[20],
		Elephants:  b[21],
	}
	return sc.Normalize()
}

// String identifies the scenario in failure messages.
func (sc Scenario) String() string {
	topo := [...]string{"line2", "line3", "testbed", "fattree-k4"}[sc.Topo%topoCount]
	s := fmt.Sprintf("seed=%d topo=%s slots=%d C=%d ring=%d flows=%d pkts=%d",
		sc.Seed, topo, sc.GroupSlots, sc.GroupC, sc.RingSlots, sc.Flows, sc.Pkts)
	if sc.LossBurst > 0 {
		s += fmt.Sprintf(" burst=%d", sc.LossBurst)
	}
	if sc.LossPct > 0 {
		s += fmt.Sprintf(" loss=%d%%", sc.LossPct)
	}
	if sc.CorruptPct > 0 {
		s += fmt.Sprintf(" corrupt=%d%%", sc.CorruptPct)
	}
	if sc.ZipfSkew > 0 {
		s += fmt.Sprintf(" zipf=%.1f", float64(sc.ZipfSkew)/10)
	}
	if sc.Elephants > 0 {
		s += fmt.Sprintf(" elephants=%d", sc.Elephants)
	}
	for _, f := range []struct {
		on   bool
		name string
	}{
		{sc.Blackhole, "blackhole"}, {sc.Parity, "parity"}, {sc.ACLDeny, "acl"},
		{sc.PathFlip, "pathflip"}, {sc.Incast, "incast"}, {sc.Pause, "pause"},
		{sc.AggIncast, "agg-incast"},
	} {
		if f.on {
			s += " +" + f.name
		}
	}
	return s
}

// Matrix returns the seeded scenario suite: ≥20 scenarios spanning every
// topology size, workload mix, group-cache sizing, and fault class, plus
// compound runs that stack faults. Deterministic in seed.
func Matrix(seed uint64) []Scenario {
	base := func(i int) Scenario {
		return Scenario{
			Seed:       seed + uint64(i)*0x9e3779b97f4a7c15,
			GroupSlots: 4096, GroupC: 128, RingSlots: 1024,
			Flows: 8, Pkts: 20,
		}
	}
	var m []Scenario
	add := func(mut func(*Scenario)) {
		sc := base(len(m))
		mut(&sc)
		m = append(m, sc.Normalize())
	}

	// Clean runs: every topology, no faults — baseline invariants.
	add(func(s *Scenario) { s.Topo = TopoLine2 })
	add(func(s *Scenario) { s.Topo = TopoLine3; s.Flows = 16 })
	add(func(s *Scenario) { s.Topo = TopoTestbed; s.Flows = 32; s.Pkts = 30 })
	add(func(s *Scenario) { s.Topo = TopoFatTreeK4; s.Flows = 24 })

	// Silent-drop recovery (§3.3): bursts and random loss, generous ring.
	add(func(s *Scenario) { s.Topo = TopoLine2; s.LossBurst = 12 })
	add(func(s *Scenario) { s.Topo = TopoLine2; s.LossPct = 10 })
	add(func(s *Scenario) { s.Topo = TopoLine3; s.LossBurst = 40; s.LossPct = 5 })
	add(func(s *Scenario) { s.Topo = TopoTestbed; s.LossPct = 8; s.Flows = 24 })
	add(func(s *Scenario) { s.Topo = TopoLine2; s.CorruptPct = 10 })
	add(func(s *Scenario) { s.Topo = TopoLine3; s.LossPct = 6; s.CorruptPct = 6 })

	// Tiny rings: overwrite losses must be accounted, never mis-reported.
	add(func(s *Scenario) { s.Topo = TopoLine2; s.RingSlots = 16; s.LossBurst = 30; s.LossPct = 10 })
	add(func(s *Scenario) { s.Topo = TopoTestbed; s.RingSlots = 32; s.LossPct = 10; s.Flows = 32 })

	// Group-cache churn (§3.4): tiny tables, tiny C — collision storms.
	add(func(s *Scenario) {
		s.Topo = TopoLine2
		s.GroupSlots = 8
		s.GroupC = 2
		s.Flows = 32
		s.Pkts = 40
		s.LossPct = 12
	})
	add(func(s *Scenario) {
		s.Topo = TopoTestbed
		s.GroupSlots = 16
		s.GroupC = 4
		s.Flows = 40
		s.Pkts = 40
		s.LossPct = 10
	})
	add(func(s *Scenario) {
		s.Topo = TopoLine3
		s.GroupSlots = 8
		s.GroupC = 1
		s.Flows = 40
		s.Pkts = 50
		s.LossBurst = 20
	})

	// Pipeline drops (§3.3 Fig. 4 taxonomy).
	add(func(s *Scenario) { s.Topo = TopoLine2; s.Blackhole = true })
	add(func(s *Scenario) { s.Topo = TopoTestbed; s.Parity = true; s.Flows = 16 })
	add(func(s *Scenario) { s.Topo = TopoLine3; s.ACLDeny = true })
	add(func(s *Scenario) { s.Topo = TopoTestbed; s.Blackhole = true; s.Parity = true; s.ACLDeny = true })

	// Path changes, congestion, pause (ECMP topologies).
	add(func(s *Scenario) { s.Topo = TopoTestbed; s.PathFlip = true })
	add(func(s *Scenario) { s.Topo = TopoFatTreeK4; s.PathFlip = true; s.Flows = 32 })
	add(func(s *Scenario) { s.Topo = TopoTestbed; s.Incast = true })
	add(func(s *Scenario) { s.Topo = TopoTestbed; s.Pause = true; s.Incast = true })

	// Sketch detection family: Zipf-skewed workloads (a few flows
	// dominate — heavy hitters and stable top-K residents), elephant/mice
	// mixes (elephants must enter the top-K and cross the heavy-hitter
	// threshold), and DDoS-shaped incast aggregates (per-link byte
	// spikes), alone and on faulted fabrics.
	add(func(s *Scenario) { s.Topo = TopoLine2; s.ZipfSkew = 12; s.Flows = 24; s.Pkts = 40 })
	add(func(s *Scenario) { s.Topo = TopoTestbed; s.ZipfSkew = 20; s.Flows = 40; s.Pkts = 50 })
	add(func(s *Scenario) { s.Topo = TopoLine3; s.Elephants = 4; s.Flows = 24; s.Pkts = 10 })
	add(func(s *Scenario) { s.Topo = TopoFatTreeK4; s.Elephants = 8; s.ZipfSkew = 15; s.Flows = 32 })
	add(func(s *Scenario) { s.Topo = TopoTestbed; s.AggIncast = true })
	add(func(s *Scenario) { s.Topo = TopoFatTreeK4; s.AggIncast = true; s.Elephants = 4; s.Flows = 24 })
	add(func(s *Scenario) {
		s.Topo = TopoTestbed
		s.ZipfSkew = 18
		s.Elephants = 6
		s.AggIncast = true
		s.LossPct = 8
		s.GroupSlots = 64
		s.GroupC = 8
	})

	// Kitchen sink: every fault class at once, stressed caches.
	add(func(s *Scenario) {
		s.Topo = TopoTestbed
		s.GroupSlots = 32
		s.GroupC = 4
		s.RingSlots = 128
		s.Flows = 40
		s.Pkts = 40
		s.LossBurst = 20
		s.LossPct = 8
		s.CorruptPct = 5
		s.Blackhole = true
		s.Parity = true
		s.ACLDeny = true
		s.PathFlip = true
		s.Incast = true
		s.Pause = true
		s.ZipfSkew = 15
		s.Elephants = 4
		s.AggIncast = true
	})
	return m
}
