package oracle

import (
	"fmt"
	"io"
)

// claimNames is the fixed checker order of CheckAll.
var claimNames = []string{"completeness", "soundness", "encoding", "recovery", "sketch", "delivery"}

// Scorecard runs the full seeded scenario matrix with every checker (TCP
// delivery included), printing one line per scenario and a per-claim
// summary. Returns the number of scenarios with at least one violation
// (0 = all claims hold).
func Scorecard(w io.Writer, seed uint64) int {
	m := Matrix(seed)
	fmt.Fprintf(w, "NetSeer correctness oracle — %d scenarios, seed %d\n", len(m), seed)
	fmt.Fprintf(w, "%-4s %-55s %s\n", "#", "scenario", "claims")
	failedScenarios := 0
	claimFails := make(map[string]int)
	for i, sc := range m {
		rep := CheckAll(Run(sc))
		line := ""
		bad := false
		for _, cr := range rep.Results {
			mark := "✓"
			if !cr.OK() {
				mark = "✗"
				bad = true
				claimFails[cr.Claim]++
			}
			line += fmt.Sprintf(" %s %s", cr.Claim, mark)
		}
		desc := sc.String()
		if len(desc) > 55 {
			desc = desc[:55]
		}
		fmt.Fprintf(w, "%-4d %-55s%s\n", i, desc, line)
		if bad {
			failedScenarios++
			for _, v := range rep.Violations() {
				fmt.Fprintf(w, "     ! %s\n", v)
			}
		}
	}
	fmt.Fprintln(w)
	for _, claim := range claimNames {
		status := "HOLDS"
		if n := claimFails[claim]; n > 0 {
			status = fmt.Sprintf("VIOLATED in %d scenarios", n)
		}
		fmt.Fprintf(w, "  %-13s %s\n", claim, status)
	}
	if failedScenarios == 0 {
		fmt.Fprintf(w, "oracle: all %d scenarios satisfy all %d claims\n", len(m), len(claimNames))
	} else {
		fmt.Fprintf(w, "oracle: %d/%d scenarios violated at least one claim\n", failedScenarios, len(m))
	}
	return failedScenarios
}
