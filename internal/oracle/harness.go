package oracle

import (
	"fmt"

	"netseer/internal/collector"
	"netseer/internal/core"
	"netseer/internal/dataplane"
	"netseer/internal/fevent"
	"netseer/internal/host"
	"netseer/internal/link"
	"netseer/internal/nic"
	"netseer/internal/pkt"
	"netseer/internal/sim"
	"netseer/internal/sketch"
	"netseer/internal/topo"
	"netseer/internal/workload"
)

// Result is everything a checker needs: the omniscient ledger, the
// collector's view, the exported batches (deep copies, in delivery
// order), and the per-switch pipeline accounting.
type Result struct {
	Sc    Scenario
	GT    *dataplane.GroundTruth
	Store *collector.Store
	// Batches are deep copies of every batch the switch CPUs exported, in
	// delivery order; the delivery checker replays them over a faulty TCP
	// channel.
	Batches []*fevent.Batch
	// Stats aggregates the per-switch NetSeer accounting; BySwitch keeps
	// the individual copies keyed by switch ID.
	Stats    core.Stats
	BySwitch map[uint16]core.Stats
	// Evictions is the per-switch group-cache eviction total: zero means
	// that switch's per-key packet counters are exact (one aggregation
	// run per key, final count emitted at flush).
	Evictions map[uint16]uint64
	// SketchCfg is the effective (defaulted) sketch stage configuration
	// every switch ran with; the sketch checker derives its thresholds
	// and error slacks from it.
	SketchCfg sketch.Config
}

// teeSink is the in-process EventSink: it forwards each batch to the
// local store and keeps a deep copy (the batcher reuses the events slice
// after delivery, so sharing it would corrupt the record).
type teeSink struct {
	store   *collector.Store
	batches []*fevent.Batch
}

func (t *teeSink) Deliver(b *fevent.Batch) {
	cp := &fevent.Batch{
		SwitchID:  b.SwitchID,
		Timestamp: b.Timestamp,
		Events:    append([]fevent.Event(nil), b.Events...),
	}
	t.batches = append(t.batches, cp)
	t.store.Deliver(cp)
}

// Run executes one scenario end to end and returns the reconciliation
// inputs. Deterministic in sc.
func Run(sc Scenario) *Result {
	sc = sc.Normalize()
	s := sim.New()
	var tp *topo.Topology
	switch sc.Topo {
	case TopoLine2:
		tp = topo.Line(2, 0, 0, 0)
	case TopoLine3:
		tp = topo.Line(3, 0, 0, 0)
	case TopoTestbed:
		tp = topo.Testbed()
	default:
		tp = topo.FatTree(topo.FatTreeConfig{K: 4})
	}
	routes := topo.BuildRoutes(tp)
	gt := dataplane.NewGroundTruth()

	swCfg := dataplane.Config{CongestionThreshold: 10 * sim.Microsecond}
	if sc.Pause {
		swCfg.LosslessMask = 1 << 3
		swCfg.PFCXoffBytes = 48 << 10
		swCfg.PFCXonBytes = 24 << 10
	}
	fab := dataplane.BuildFabric(s, tp, routes, swCfg, gt, sc.Seed)

	var pktID uint64
	hosts := make([]*host.Host, 0, len(tp.Hosts()))
	hostByID := make(map[topo.NodeID]*host.Host)
	for _, hn := range tp.Hosts() {
		h := host.Attach(s, fab, hn, nic.Config{}, &pktID)
		h.Handle(workload.DataPort, func(*pkt.Packet) {})
		hosts = append(hosts, h)
		hostByID[hn.ID] = h
	}

	// Capacity budgets are effectively unlimited: the oracle verifies
	// detection logic, not capacity loss, so the Lost* counters must stay
	// zero (checkers assert the ones that should).
	nsCfg := core.Config{
		CongestionThreshold: swCfg.CongestionThreshold,
		GroupSlots:          int(sc.GroupSlots),
		GroupC:              uint16(sc.GroupC),
		RingSlots:           int(sc.RingSlots),
		MMURedirectBps:      1e15,
		InternalPortBps:     1e15,
		ExportBps:           1e15,
		// The sketch stage runs in every scenario — the sketch checker's
		// claims must hold on clean and faulted fabrics alike. Thresholds
		// are sized so modest oracle workloads genuinely cross them.
		Sketch: true,
		SketchCfg: sketch.Config{
			TopK:            16,
			HHThresholdPkts: 24,
			ChurnMin:        4,
			SpikeBytes:      32 << 10,
		},
	}
	sink := &teeSink{store: collector.NewStore()}
	var netseers []*core.NetSeerSwitch
	fab.EachSwitch(func(sw *dataplane.Switch) {
		netseers = append(netseers, core.Attach(sw, nsCfg, sink))
	})
	// Ground truth mirrors the sketch stage's exact aggregates: same
	// window, same stream (pre-MMU pipeline survivors). Set before any
	// traffic is scheduled so the ledgers cover every packet.
	effSketch := netseers[0].Sketch().Config()
	gt.SketchWindow = effSketch.Window

	rng := sim.NewStream(sc.Seed, "oracle")
	lane := pickLane(tp, fab, hosts, rng)
	scheduleWorkload(s, sc, hosts, lane, rng)
	scheduleFaults(s, sc, tp, fab, routes, hostByID, lane, rng)

	s.Run(Window)
	drain(s, netseers)

	res := &Result{
		Sc: sc, GT: gt, Store: sink.store, Batches: sink.batches,
		BySwitch:  make(map[uint16]core.Stats),
		Evictions: make(map[uint16]uint64),
		SketchCfg: effSketch,
	}
	for _, ns := range netseers {
		st := ns.Stats()
		id := ns.Switch().ID
		res.BySwitch[id] = st
		_, _, _, ev := ns.TableStats()
		res.Evictions[id] = ev
		res.Stats.LostMMURedirect += st.LostMMURedirect
		res.Stats.LostInternalPort += st.LostInternalPort
		res.Stats.LostRingOverwrite += st.LostRingOverwrite
		res.Stats.LostStackOverflow += st.LostStackOverflow
		res.Stats.SeqGapsDetected += st.SeqGapsDetected
		res.Stats.NotifySent += st.NotifySent
		res.Stats.InterSwitchFound += st.InterSwitchFound
		res.Stats.SuppressedFPs += st.SuppressedFPs
		res.Stats.ExportedEvents += st.ExportedEvents
		res.Stats.ExportedBatches += st.ExportedBatches
	}
	return res
}

// drain flushes every table/batcher and runs the simulator dry, repeating
// because a flush can schedule paced deliveries which in turn surface
// in-flight packets whose telemetry needs another flush.
func drain(s *sim.Simulator, netseers []*core.NetSeerSwitch) {
	for _, ns := range netseers {
		ns.Flush()
	}
	for _, ns := range netseers {
		ns.Stop()
	}
	for i := 0; i < 3; i++ {
		s.RunAll()
		for _, ns := range netseers {
			ns.Flush()
		}
	}
	s.RunAll()
}

// lane is the instrumented path every fault schedule targets: a source
// host, its ToR, one ToR fabric uplink (the fault link), and a remote
// destination host pinned through that uplink. Faulting exactly one
// direction of one switch–switch link keeps the reverse path clean for
// loss notifications, and the lane's fixed packet schedule guarantees
// both victims during the fault phase and trailer packets after it.
type lane struct {
	src, dst *host.Host
	tor      *dataplane.Switch
	torNode  topo.NodeID
	link     *link.Link
	fromA    bool // fault direction: ToR → fabric
	torPort  int  // ToR egress port onto the fault link
}

// pickLane chooses the lane deterministically from rng.
func pickLane(tp *topo.Topology, fab *dataplane.Fabric, hosts []*host.Host, rng *sim.Stream) lane {
	src := hosts[rng.Intn(len(hosts))]
	at := fab.HostPorts[src.Node.ID][0]
	torNode := topo.NodeID(-1)
	for nid, sw := range fab.Switches {
		if sw == at.Switch {
			torNode = nid
			break
		}
	}
	var l lane
	l.src, l.tor, l.torNode = src, at.Switch, torNode
	// First switch–switch link touching the ToR (in topology order, so
	// deterministic).
	for i, tl := range tp.Links() {
		aSw := tp.Node(tl.A).Kind == topo.KindSwitch
		bSw := tp.Node(tl.B).Kind == topo.KindSwitch
		if !aSw || !bSw {
			continue
		}
		if tl.A != torNode && tl.B != torNode {
			continue
		}
		l.link = fab.Links[i]
		l.fromA = tl.A == torNode
		if l.fromA {
			l.torPort = tl.APort
		} else {
			l.torPort = tl.BPort
		}
		break
	}
	if l.link == nil {
		panic(fmt.Sprintf("oracle: no fabric uplink on ToR of %s", src.Node.Name))
	}
	// Destination: any host not under the same ToR. Every topology the
	// oracle builds has one.
	for _, h := range hosts {
		if fab.HostPorts[h.Node.ID][0].Switch != l.tor {
			l.dst = h
			break
		}
	}
	if l.dst == nil {
		panic("oracle: no remote host for lane destination")
	}
	return l
}

// scheduleWorkload installs the background flows and the lane flows.
func scheduleWorkload(s *sim.Simulator, sc Scenario, hosts []*host.Host, ln lane, rng *sim.Stream) {
	// Lane flows: two fixed 5-tuples pinned through the fault link, one
	// packet every Window/64 across the whole window — victims during the
	// fault phase, trailer packets after it.
	for i := 0; i < 2; i++ {
		flow := pkt.FlowKey{
			SrcIP: ln.src.Node.IP, DstIP: ln.dst.Node.IP,
			SrcPort: uint16(40001 + i), DstPort: workload.DataPort,
			Proto: pkt.ProtoUDP,
		}
		for t := sim.Time(0); t <= Window; t += Window / 64 {
			t := t
			s.At(t, func() { ln.src.SendUDP(flow, 1, 724, 0) })
		}
	}
	// Zipf-skewed traffic: one host pair, a pool of flows distinguished by
	// source port, packets distributed by Zipf rank. Low ranks become
	// genuine heavy hitters at the pair's ToRs; the tail stays mice. All
	// flows share a path, so the per-switch sketch sees the full skew.
	if sc.ZipfSkew > 0 {
		zsrc := hosts[rng.Intn(len(hosts))]
		zdst := hosts[rng.Intn(len(hosts))]
		if zdst == zsrc {
			zdst = hosts[(rng.Intn(len(hosts))+1)%len(hosts)]
		}
		if zdst != zsrc {
			const zipfFlows, zipfPkts = 24, 600
			z := workload.NewZipf(zipfFlows, float64(sc.ZipfSkew)/10)
			for p := 0; p < zipfPkts; p++ {
				flow := pkt.FlowKey{
					SrcIP: zsrc.Node.IP, DstIP: zdst.Node.IP,
					SrcPort: uint16(30000 + z.Rank(rng)), DstPort: workload.DataPort,
					Proto: pkt.ProtoUDP,
				}
				at := sim.Time(rng.Intn(int(3 * Window / 4)))
				s.At(at, func() { zsrc.SendUDP(flow, 1, 512, 0) })
			}
		}
	}
	// Elephant/mice mix: each elephant sends enough packets on its own to
	// cross the heavy-hitter threshold at its ToR, against the mice of the
	// background set.
	for i := 0; i < int(sc.Elephants); i++ {
		src := hosts[rng.Intn(len(hosts))]
		dst := hosts[rng.Intn(len(hosts))]
		if dst == src {
			dst = hosts[(rng.Intn(len(hosts))+1)%len(hosts)]
			if dst == src {
				continue
			}
		}
		flow := pkt.FlowKey{
			SrcIP: src.Node.IP, DstIP: dst.Node.IP,
			SrcPort: uint16(31000 + i), DstPort: workload.DataPort,
			Proto: pkt.ProtoUDP,
		}
		for p := 0; p < 48; p++ {
			at := sim.Time(rng.Intn(int(3 * Window / 4)))
			s.At(at, func() { src.SendUDP(flow, 1, 900, 0) })
		}
	}
	// DDoS-shaped aggregate: a fan-in byte burst onto one receiver,
	// concentrated enough that the receiver-side egress link crosses the
	// per-window spike threshold. Normalize() disables this on the line
	// topologies, which lack spare senders.
	if sc.AggIncast {
		var senders []*host.Host
		for _, h := range hosts {
			if h != ln.src && h != ln.dst && len(senders) < 8 {
				senders = append(senders, h)
			}
		}
		if len(senders) > 0 {
			s.Schedule(Window/8, func() {
				workload.Incast(s, senders, ln.dst, 128<<10, 1000, 0)
			})
		}
	}
	// Background flows: random pairs, random schedules in [0, 3W/4).
	for i := 0; i < int(sc.Flows); i++ {
		src := hosts[rng.Intn(len(hosts))]
		dst := hosts[rng.Intn(len(hosts))]
		if dst == src {
			dst = hosts[(rng.Intn(len(hosts))+1)%len(hosts)]
			if dst == src {
				continue
			}
		}
		flow := pkt.FlowKey{
			SrcIP: src.Node.IP, DstIP: dst.Node.IP,
			SrcPort: uint16(20000 + i), DstPort: workload.DataPort,
			Proto: pkt.ProtoUDP,
		}
		wire := 128 + rng.Intn(1272)
		for p := 0; p < int(sc.Pkts); p++ {
			at := sim.Time(rng.Intn(int(3 * Window / 4)))
			s.At(at, func() { src.SendUDP(flow, 1, wire, 0) })
		}
	}
}

// scheduleFaults installs the scenario's fault schedule. Pipeline-drop
// victims target the lane source's address so every topology exercises
// them: all traffic toward the source must traverse its ToR, where the
// fault is installed. Blackhole and parity time-share the victim address
// (blackhole [W/4, W/2), parity [W/2, 3W/4)) because both key on dstIP.
func scheduleFaults(s *sim.Simulator, sc Scenario, tp *topo.Topology, fab *dataplane.Fabric,
	routes *topo.Routes, hostByID map[topo.NodeID]*host.Host, ln lane, rng *sim.Stream) {

	// Pin the lane destination through the fault link so lane traffic is
	// guaranteed to cross it (ECMP would otherwise spread it).
	ln.tor.SetRouteOverride(ln.dst.Node.IP, []int{ln.torPort})

	if sc.LossPct > 0 || sc.CorruptPct > 0 {
		f := link.Fault{
			SilentLossProb: float64(sc.LossPct) / 100,
			CorruptProb:    float64(sc.CorruptPct) / 100,
		}
		s.Schedule(Window/4, func() { ln.link.SetFault(ln.fromA, f) })
		s.Schedule(3*Window/4, func() { ln.link.SetFault(ln.fromA, link.Fault{}) })
	}
	if sc.LossBurst > 0 {
		n := int(sc.LossBurst)
		s.Schedule(Window/2, func() { ln.link.InjectLossBurst(ln.fromA, n) })
	}

	victim := ln.src // drop-fault victim destination (see doc comment)
	if sc.Blackhole {
		s.Schedule(Window/4, func() { ln.tor.SetRouteOverride(victim.Node.IP, []int{}) })
		s.Schedule(Window/2, func() { ln.tor.ClearRouteOverride(victim.Node.IP) })
	}
	if sc.Parity {
		s.Schedule(Window/2, func() { ln.tor.InjectParityError(victim.Node.IP) })
		s.Schedule(3*Window/4, func() { ln.tor.ClearParityError(victim.Node.IP) })
	}
	if sc.Blackhole || sc.Parity {
		// Victim traffic: the lane destination sends toward the victim
		// through the fault window; every packet crosses the victim's ToR.
		flow := pkt.FlowKey{
			SrcIP: ln.dst.Node.IP, DstIP: victim.Node.IP,
			SrcPort: 41001, DstPort: workload.DataPort, Proto: pkt.ProtoUDP,
		}
		for t := Window / 4; t < 3*Window/4; t += Window / 64 {
			t := t
			s.At(t, func() { ln.dst.SendUDP(flow, 1, 512, 0) })
		}
	}
	if sc.ACLDeny {
		// Deny one well-known destination port on the ToR and send
		// matching traffic from a directly attached host; ACL is evaluated
		// before routing, so the victims never reach the fault link.
		ln.tor.ACL().Add(dataplane.ACLRule{
			ID: 7, Action: dataplane.ACLDeny,
			MatchDstPort: true, DstPort: 9999,
		})
		flow := pkt.FlowKey{
			SrcIP: ln.src.Node.IP, DstIP: ln.dst.Node.IP,
			SrcPort: 42001, DstPort: 9999, Proto: pkt.ProtoUDP,
		}
		for t := Window / 4; t < 3*Window/4; t += Window / 32 {
			t := t
			s.At(t, func() { ln.src.SendUDP(flow, 1, 256, 0) })
		}
	}
	if sc.PathFlip {
		// Pin one destination to a single next hop on every ECMP switch,
		// flip to the alternate mid-run, and keep long-lived flows toward
		// it alive across the flip (idiom from experiments.Run).
		flip := ln.dst
		for nid, sw := range fab.Switches {
			sw := sw
			hops := routes.NextHops(nid, flip.Node.IP)
			if len(hops) < 2 || sw == ln.tor {
				continue
			}
			sw.SetRouteOverride(flip.Node.IP, hops[:1])
			s.Schedule(Window/2, func() { sw.SetRouteOverride(flip.Node.IP, hops[1:]) })
		}
		for t := sim.Time(0); t < Window; t += Window / 16 {
			t := t
			s.At(t, func() {
				for fi := 0; fi < 4; fi++ {
					flow := pkt.FlowKey{
						SrcIP: ln.src.Node.IP, DstIP: flip.Node.IP,
						SrcPort: uint16(43001 + fi), DstPort: workload.DataPort,
						Proto: pkt.ProtoTCP,
					}
					ln.src.SendUDP(flow, 1, 724, 0)
				}
			})
		}
	}
	if sc.Incast || sc.Pause {
		// Fan-in burst onto one receiver; priority 3 is the lossless class
		// when Pause is set, so the same burst produces PFC pause events.
		var senders []*host.Host
		for _, hn := range tp.Hosts() {
			h := hostByID[hn.ID]
			if h != ln.src && h != ln.dst && len(senders) < 8 {
				senders = append(senders, h)
			}
		}
		var prio uint8
		if sc.Pause {
			prio = 3
		}
		s.Schedule(Window/3, func() {
			workload.Incast(s, senders, ln.dst, 256<<10, 1000, prio)
		})
	}
	_ = rng
}
