package oracle

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"netseer/internal/fevent"
)

// TestScenarioMatrix is the seeded differential-testing suite: every
// scenario runs the full pipeline and must satisfy all five invariant
// checkers, including the TCP delivery replay.
func TestScenarioMatrix(t *testing.T) {
	m := Matrix(0x5eed)
	if len(m) < 20 {
		t.Fatalf("matrix has %d scenarios, want >= 20", len(m))
	}
	for i, sc := range m {
		sc := sc
		t.Run(fmt.Sprintf("%02d_%s", i, name(sc)), func(t *testing.T) {
			t.Parallel()
			rep := CheckAll(Run(sc))
			for _, v := range rep.Violations() {
				t.Error(v)
			}
			if t.Failed() {
				t.Logf("scenario: %s", sc)
				t.Logf("repro bytes: %x", sc.Encode())
			}
		})
	}
}

// name renders a compact subtest name.
func name(sc Scenario) string {
	s := sc.String()
	s = strings.NewReplacer(" ", ",", "=", "_").Replace(s)
	if len(s) > 60 {
		s = s[:60]
	}
	return s
}

func TestScenarioEncodeDecodeRoundTrip(t *testing.T) {
	for _, sc := range Matrix(42) {
		got := DecodeScenario(sc.Encode())
		if got != sc {
			t.Errorf("round trip changed scenario:\n in: %+v\nout: %+v", sc, got)
		}
	}
}

func TestDecodeScenarioToleratesArbitraryInput(t *testing.T) {
	cases := [][]byte{nil, {}, {0xff}, make([]byte, 5), make([]byte, 100)}
	for _, in := range cases {
		sc := DecodeScenario(in)
		if sc != sc.Normalize() {
			t.Errorf("decode of %d bytes not normalized: %+v", len(in), sc)
		}
	}
}

func TestNormalizeBounds(t *testing.T) {
	sc := Scenario{
		Topo: 200, Flows: 255, Pkts: 255,
		LossBurst: 255, LossPct: 255, CorruptPct: 255,
		PathFlip: true, Incast: true, Pause: true,
	}.Normalize()
	if sc.Topo >= topoCount {
		t.Errorf("Topo not clamped: %d", sc.Topo)
	}
	if sc.Flows > 40 || sc.Pkts > 50 || sc.LossBurst > 60 || sc.LossPct > 20 || sc.CorruptPct > 20 {
		t.Errorf("numeric fields not clamped: %+v", sc)
	}
	if sc.GroupSlots < 8 || sc.GroupC < 1 || sc.RingSlots < 16 {
		t.Errorf("zero sizes not raised to minima: %+v", sc)
	}
	if sc.Topo == TopoLine2 && (sc.PathFlip || sc.Incast || sc.Pause) {
		t.Errorf("line topology kept multi-host faults: %+v", sc)
	}
}

func TestScenarioStringMentionsFaults(t *testing.T) {
	sc := Scenario{Seed: 1, Topo: TopoTestbed, LossBurst: 5, LossPct: 3, CorruptPct: 2,
		Blackhole: true, Parity: true, ACLDeny: true, PathFlip: true, Incast: true, Pause: true}.Normalize()
	s := sc.String()
	for _, want := range []string{"burst=5", "loss=3%", "corrupt=2%", "+blackhole", "+parity", "+acl", "+pathflip", "+incast", "+pause"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q, missing %q", s, want)
		}
	}
}

// TestReproSeeds replays every committed minimized regression seed; these
// are scenarios that once exposed an invariant violation and must stay
// green forever.
func TestReproSeeds(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("testdata", "repros", "*.bin"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Skip("no repro seeds committed")
	}
	for _, f := range files {
		f := f
		t.Run(filepath.Base(f), func(t *testing.T) {
			t.Parallel()
			data, err := os.ReadFile(f)
			if err != nil {
				t.Fatal(err)
			}
			sc := DecodeScenario(data)
			rep := CheckAll(Run(sc))
			for _, v := range rep.Violations() {
				t.Error(v)
			}
			if t.Failed() {
				t.Logf("scenario: %s", sc)
			}
		})
	}
}

// TestMinimizeShrinksFailingScenario exercises the fuzz minimizer against
// a synthetic failure predicate: the minimizer must keep the predicate
// true while stripping everything irrelevant to it.
func TestMinimizeShrinksFailingScenario(t *testing.T) {
	big := Scenario{
		Seed: 9, Topo: TopoTestbed, GroupSlots: 16, GroupC: 2, RingSlots: 32,
		Flows: 40, Pkts: 50, LossBurst: 60, LossPct: 20, CorruptPct: 20,
		Blackhole: true, Parity: true, ACLDeny: true, PathFlip: true, Incast: true, Pause: true,
	}.Normalize()
	calls := 0
	failing := func(sc Scenario) bool {
		calls++
		return sc.LossBurst > 0 // only the burst matters
	}
	min := Minimize(big, failing)
	if min.LossBurst == 0 {
		t.Fatal("minimizer lost the failure-relevant field")
	}
	if !failing(min) {
		t.Fatal("minimized scenario no longer fails")
	}
	if min.Blackhole || min.Parity || min.ACLDeny || min.PathFlip || min.Incast || min.Pause {
		t.Errorf("irrelevant fault flags survived minimization: %+v", min)
	}
	if min.Flows != 1 || min.Pkts != 1 {
		t.Errorf("workload not minimized: flows=%d pkts=%d", min.Flows, min.Pkts)
	}
	if min.Topo != TopoLine2 {
		t.Errorf("topology not minimized: %d", min.Topo)
	}
	if calls > 400 {
		t.Errorf("minimizer used %d evaluations; want a bounded greedy pass", calls)
	}
}

func TestMinimizeReturnsPassingInputUnchanged(t *testing.T) {
	sc := Matrix(7)[0]
	got := Minimize(sc, func(Scenario) bool { return false })
	if got != sc {
		t.Errorf("minimizer mutated a non-failing scenario: %+v -> %+v", sc, got)
	}
}

// TestCheckersCatchTampering corrupts a healthy run's artifacts and
// verifies each checker actually fires — the oracle must not be
// vacuously green.
func TestCheckersCatchTampering(t *testing.T) {
	sc := Scenario{Seed: 3, Topo: TopoLine2, GroupSlots: 4096, GroupC: 128,
		RingSlots: 1024, Flows: 8, Pkts: 20, LossBurst: 10}.Normalize()

	t.Run("completeness_missed_event", func(t *testing.T) {
		res := Run(sc)
		res.Store.Reset() // collector "lost" everything
		rep := Check(res)
		if rep.Results[0].OK() {
			t.Error("completeness checker passed with an empty store")
		}
	})
	t.Run("soundness_phantom_event", func(t *testing.T) {
		res := Run(sc)
		if len(res.Batches) == 0 {
			t.Fatal("scenario produced no batches")
		}
		phantom := res.Batches[0]
		if len(phantom.Events) == 0 {
			t.Fatal("first batch is empty")
		}
		ev := phantom.Events[0]
		ev.Flow.SrcPort = 65432 // a flow that never existed
		ev.Hash = ev.Flow.Hash()
		res.Store.Deliver(&fevent.Batch{SwitchID: ev.SwitchID, Events: []fevent.Event{ev}})
		rep := Check(res)
		if rep.Results[1].OK() {
			t.Error("soundness checker passed with a phantom event in the store")
		}
	})
	t.Run("encoding_bad_hash", func(t *testing.T) {
		res := Run(sc)
		if len(res.Batches) == 0 || len(res.Batches[0].Events) == 0 {
			t.Fatal("no exported events to tamper with")
		}
		res.Batches[0].Events[0].Hash ^= 0xdeadbeef
		rep := Check(res)
		if rep.Results[2].OK() {
			t.Error("encoding checker passed with a corrupted pre-computed hash")
		}
	})
	t.Run("recovery_counts", func(t *testing.T) {
		res := Run(sc)
		res.Stats.InterSwitchFound += 5 // claim more recoveries than truth
		rep := Check(res)
		if rep.Results[0].OK() && rep.Results[3].OK() {
			t.Error("no checker noticed inflated recovery accounting")
		}
	})
}
