package oracle

import (
	"os"
	"path/filepath"
	"testing"
)

// FuzzPipeline is the whole-system fuzzer: arbitrary bytes decode into a
// (topology, workload, fault-schedule) scenario, the full pipeline runs,
// and the four in-process invariant checkers must hold. (The delivery
// checker needs real sockets and wall-clock backoff, so the seeded matrix
// covers it instead.) On failure the scenario is greedily minimized and
// written under testdata/repros/ for TestReproSeeds to replay forever.
func FuzzPipeline(f *testing.F) {
	for _, sc := range Matrix(1) {
		f.Add(sc.Encode())
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		sc := DecodeScenario(data)
		rep := Check(Run(sc))
		if rep.OK() {
			return
		}
		min := Minimize(sc, func(s Scenario) bool { return !Check(Run(s)).OK() })
		path, werr := writeRepro(min)
		minRep := Check(Run(min))
		t.Errorf("invariant violations in %s:", sc)
		for _, v := range minRep.Violations() {
			t.Errorf("  %s", v)
		}
		if werr != nil {
			t.Errorf("could not write repro file: %v (minimized bytes: %x)", werr, min.Encode())
		} else {
			t.Errorf("minimized repro written to %s (scenario: %s)", path, min)
		}
	})
}

// writeRepro persists a minimized failing scenario as a replayable
// regression seed. Best-effort: fuzz workers may run in sandboxed
// directories where testdata/ is absent.
func writeRepro(sc Scenario) (string, error) {
	dir := filepath.Join("testdata", "repros")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	path := filepath.Join(dir, "repro-"+hexName(sc)+".bin")
	return path, os.WriteFile(path, sc.Encode(), 0o644)
}

func hexName(sc Scenario) string {
	const digits = "0123456789abcdef"
	enc := sc.Encode()
	out := make([]byte, 0, 2*len(enc))
	for _, b := range enc {
		out = append(out, digits[b>>4], digits[b&0x0f])
	}
	return string(out)
}
