package link

import (
	"testing"

	"netseer/internal/pkt"
	"netseer/internal/sim"
)

type sink struct {
	got   []*pkt.Packet
	ports []int
}

func (s *sink) Receive(p *pkt.Packet, port int) {
	s.got = append(s.got, p)
	s.ports = append(s.ports, port)
}

func newTestLink(t *testing.T) (*sim.Simulator, *Link, *sink, *sink) {
	t.Helper()
	s := sim.New()
	a, b := &sink{}, &sink{}
	l := New(s, Endpoint{a, 3}, Endpoint{b, 7}, sim.Microsecond, sim.NewStream(1, "link"))
	return s, l, a, b
}

func TestDeliveryWithPropDelay(t *testing.T) {
	s, l, _, b := newTestLink(t)
	p := &pkt.Packet{ID: 1, WireLen: 100}
	l.Send(true, p)
	s.RunAll()
	if len(b.got) != 1 || b.got[0].ID != 1 {
		t.Fatalf("delivery failed: %v", b.got)
	}
	if b.ports[0] != 7 {
		t.Errorf("delivered on port %d, want 7", b.ports[0])
	}
	if s.Now() != sim.Microsecond {
		t.Errorf("delivered at %v, want 1µs", s.Now())
	}
}

func TestBidirectional(t *testing.T) {
	s, l, a, b := newTestLink(t)
	l.Send(true, &pkt.Packet{ID: 1})
	l.Send(false, &pkt.Packet{ID: 2})
	s.RunAll()
	if len(b.got) != 1 || len(a.got) != 1 {
		t.Fatalf("a got %d, b got %d", len(a.got), len(b.got))
	}
	if a.ports[0] != 3 {
		t.Errorf("a received on port %d, want 3", a.ports[0])
	}
}

func TestSilentLoss(t *testing.T) {
	s, l, _, b := newTestLink(t)
	l.SetFault(true, Fault{SilentLossProb: 1.0})
	for i := 0; i < 10; i++ {
		l.Send(true, &pkt.Packet{ID: uint64(i)})
	}
	s.RunAll()
	if len(b.got) != 0 {
		t.Fatalf("delivered %d frames through lossy link", len(b.got))
	}
	sent, delivered, lost, _ := l.Stats(true)
	if sent != 10 || delivered != 0 || lost != 10 {
		t.Errorf("stats = %d %d %d", sent, delivered, lost)
	}
}

func TestSilentLossRate(t *testing.T) {
	s, l, _, b := newTestLink(t)
	l.SetFault(true, Fault{SilentLossProb: 0.1})
	const n = 10000
	for i := 0; i < n; i++ {
		l.Send(true, &pkt.Packet{ID: uint64(i)})
	}
	s.RunAll()
	got := len(b.got)
	if got < 8700 || got > 9300 {
		t.Errorf("delivered %d of %d at 10%% loss", got, n)
	}
}

func TestCorruptionDeliversDamagedFrame(t *testing.T) {
	s, l, _, b := newTestLink(t)
	l.SetFault(true, Fault{CorruptProb: 1.0})
	l.Send(true, &pkt.Packet{ID: 5})
	s.RunAll()
	if len(b.got) != 1 {
		t.Fatal("corrupted frame not delivered")
	}
	if !b.got[0].Corrupt {
		t.Error("frame not marked corrupt")
	}
	_, _, _, corrupt := l.Stats(true)
	if corrupt != 1 {
		t.Errorf("corrupt count = %d", corrupt)
	}
}

func TestLossBurst(t *testing.T) {
	s, l, _, b := newTestLink(t)
	l.InjectLossBurst(true, 3)
	for i := 0; i < 5; i++ {
		l.Send(true, &pkt.Packet{ID: uint64(i)})
	}
	s.RunAll()
	if len(b.got) != 2 {
		t.Fatalf("delivered %d, want 2 after 3-frame burst", len(b.got))
	}
	if b.got[0].ID != 3 || b.got[1].ID != 4 {
		t.Errorf("wrong survivors: %d %d", b.got[0].ID, b.got[1].ID)
	}
}

func TestBurstIsDirectional(t *testing.T) {
	s, l, a, _ := newTestLink(t)
	l.InjectLossBurst(true, 3)
	l.Send(false, &pkt.Packet{ID: 9})
	s.RunAll()
	if len(a.got) != 1 {
		t.Error("burst on A→B affected B→A")
	}
}

func TestDownLinkDropsEverything(t *testing.T) {
	s, l, a, b := newTestLink(t)
	l.SetDown(true)
	if !l.Down() {
		t.Error("Down() = false")
	}
	l.Send(true, &pkt.Packet{})
	l.Send(false, &pkt.Packet{})
	s.RunAll()
	if len(a.got)+len(b.got) != 0 {
		t.Error("down link delivered frames")
	}
	l.SetDown(false)
	l.Send(true, &pkt.Packet{})
	s.RunAll()
	if len(b.got) != 1 {
		t.Error("restored link did not deliver")
	}
}

func TestValidation(t *testing.T) {
	s := sim.New()
	for _, f := range []func(){
		func() { New(s, Endpoint{}, Endpoint{&sink{}, 0}, 0, sim.NewStream(1, "x")) },
		func() { New(s, Endpoint{&sink{}, 0}, Endpoint{&sink{}, 0}, 0, nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid New did not panic")
				}
			}()
			f()
		}()
	}
}
