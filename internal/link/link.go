// Package link models the physical medium between two devices:
// propagation delay plus the failure modes NetSeer's inter-switch
// detection exists for — silent packet drops and corruption caused by
// contaminated connectors, bent fibre, decaying transmitters, etc. (§3.3).
//
// Serialization time is accounted by the transmitting port (it owns the
// line rate); a Link only delays, damages or destroys frames in flight.
package link

import (
	"netseer/internal/pkt"
	"netseer/internal/sim"
)

// Device is anything that can receive packets from a link: a switch
// pipeline or a host NIC.
type Device interface {
	// Receive delivers a packet arriving on the device's ingressPort.
	Receive(p *pkt.Packet, ingressPort int)
}

// Fault is an injectable per-direction failure process.
type Fault struct {
	// SilentLossProb silently destroys each frame with this probability.
	SilentLossProb float64
	// CorruptProb damages each frame with this probability; damaged frames
	// are delivered with Corrupt set (the receiving MAC drops them).
	CorruptProb float64
	// burst state: a scheduled run of consecutive losses.
	burstRemaining int
}

// Endpoint names one side of a link.
type Endpoint struct {
	Dev  Device
	Port int
}

// DeliverFunc schedules fn to run after delay d on whatever event loop
// owns the receiving endpoint. The default delivers on the simulator the
// link was built with; sharded fabrics install per-direction functions so
// a frame's propagation lands on the receiver's shard.
type DeliverFunc func(d sim.Time, fn func())

// Link is a full-duplex medium between endpoints A and B.
type Link struct {
	sim  *sim.Simulator
	a, b Endpoint
	prop sim.Time

	faultAB Fault // applies to frames A→B
	faultBA Fault
	// Per-direction fault RNG. Two independent streams rather than one
	// shared: each direction's draw sequence then depends only on that
	// direction's own frame order, not on how the two directions
	// interleave — which is what lets a per-switch-sharded run reproduce
	// the sequential engine's fault pattern exactly.
	rngAB *sim.Stream
	rngBA *sim.Stream

	deliverAB DeliverFunc // schedules deliveries toward B
	deliverBA DeliverFunc // schedules deliveries toward A

	// Per-direction delivery stats.
	sentAB, deliveredAB, lostAB, corruptAB uint64
	sentBA, deliveredBA, lostBA, corruptBA uint64

	down bool

	// OnLost, when set, is invoked for every frame destroyed in flight
	// (silent loss, burst, down link) or damaged (corrupted=true; the
	// frame still delivers and the receiving MAC discards it). Fabric
	// builders use it to feed the ground-truth ledger.
	OnLost func(fromA bool, p *pkt.Packet, corrupted bool)
}

// New creates a link with the given propagation delay. rng drives the
// fault processes of both directions and must not be nil; pass any stream
// for fault-free links too (it is cheap). Fabrics that need per-direction
// draw independence use NewSplit instead.
func New(s *sim.Simulator, a, b Endpoint, prop sim.Time, rng *sim.Stream) *Link {
	return NewSplit(s, a, b, prop, rng, rng)
}

// NewSplit creates a link whose two directions draw from independent
// fault streams (rngAB drives frames A→B). Deliveries default to s for
// both directions; SetDeliver overrides them per direction.
func NewSplit(s *sim.Simulator, a, b Endpoint, prop sim.Time, rngAB, rngBA *sim.Stream) *Link {
	if a.Dev == nil || b.Dev == nil {
		panic("link: endpoints must have devices")
	}
	if rngAB == nil || rngBA == nil {
		panic("link: rng must not be nil")
	}
	l := &Link{sim: s, a: a, b: b, prop: prop, rngAB: rngAB, rngBA: rngBA}
	l.deliverAB = func(d sim.Time, fn func()) { l.sim.Schedule(d, fn) }
	l.deliverBA = l.deliverAB
	return l
}

// SetDeliver installs the delivery scheduler for the direction from the
// given side ("from A" schedules deliveries toward endpoint B).
func (l *Link) SetDeliver(fromA bool, fn DeliverFunc) {
	if fn == nil {
		panic("link: deliver func must not be nil")
	}
	if fromA {
		l.deliverAB = fn
	} else {
		l.deliverBA = fn
	}
}

// SetEndpoint rewires one side of the link. Fabric builders construct
// links before all devices exist and patch endpoints afterwards; frames
// already in flight deliver to the endpoint captured at send time.
func (l *Link) SetEndpoint(aSide bool, e Endpoint) {
	if e.Dev == nil {
		panic("link: endpoint device must not be nil")
	}
	if aSide {
		l.a = e
	} else {
		l.b = e
	}
}

// SetFault configures the failure process for the direction from the given
// side ("from A" means frames transmitted by endpoint A).
func (l *Link) SetFault(fromA bool, f Fault) {
	if fromA {
		l.faultAB = f
	} else {
		l.faultBA = f
	}
}

// InjectLossBurst destroys the next n frames in the given direction —
// the deterministic injector used to exercise consecutive-drop recovery
// (Fig. 15).
func (l *Link) InjectLossBurst(fromA bool, n int) {
	if fromA {
		l.faultAB.burstRemaining += n
	} else {
		l.faultBA.burstRemaining += n
	}
}

// SetDown marks the link administratively/physically down; both directions
// destroy all frames. (Port-down pipeline drops are detected at the
// transmitting switch before frames reach the link; SetDown models a cut
// in flight.)
func (l *Link) SetDown(down bool) { l.down = down }

// Down reports the link's down state.
func (l *Link) Down() bool { return l.down }

// PropDelay returns the propagation delay.
func (l *Link) PropDelay() sim.Time { return l.prop }

// Send transmits p from the given side. The packet is delivered to the
// opposite endpoint after the propagation delay, unless a fault destroys
// it. Send takes ownership of p.
func (l *Link) Send(fromA bool, p *pkt.Packet) {
	var fault *Fault
	var to Endpoint
	var rng *sim.Stream
	var deliver DeliverFunc
	if fromA {
		fault, to, rng, deliver = &l.faultAB, l.b, l.rngAB, l.deliverAB
		l.sentAB++
	} else {
		fault, to, rng, deliver = &l.faultBA, l.a, l.rngBA, l.deliverBA
		l.sentBA++
	}
	if l.down {
		l.count(fromA, &l.lostAB, &l.lostBA)
		l.lost(fromA, p, false)
		return
	}
	if fault.burstRemaining > 0 {
		fault.burstRemaining--
		l.count(fromA, &l.lostAB, &l.lostBA)
		l.lost(fromA, p, false)
		return
	}
	if fault.SilentLossProb > 0 && rng.Bool(fault.SilentLossProb) {
		l.count(fromA, &l.lostAB, &l.lostBA)
		l.lost(fromA, p, false)
		return
	}
	if fault.CorruptProb > 0 && rng.Bool(fault.CorruptProb) {
		p.Corrupt = true
		l.count(fromA, &l.corruptAB, &l.corruptBA)
		l.lost(fromA, p, true)
	}
	l.count(fromA, &l.deliveredAB, &l.deliveredBA)
	port := to.Port
	dev := to.Dev
	deliver(l.prop, func() { dev.Receive(p, port) })
}

func (l *Link) lost(fromA bool, p *pkt.Packet, corrupted bool) {
	if l.OnLost != nil {
		l.OnLost(fromA, p, corrupted)
	}
}

func (l *Link) count(fromA bool, ab, ba *uint64) {
	if fromA {
		*ab++
	} else {
		*ba++
	}
}

// Stats reports per-direction counters: sent, delivered, silently lost,
// corrupted-but-delivered.
func (l *Link) Stats(fromA bool) (sent, delivered, lost, corrupt uint64) {
	if fromA {
		return l.sentAB, l.deliveredAB, l.lostAB, l.corruptAB
	}
	return l.sentBA, l.deliveredBA, l.lostBA, l.corruptBA
}
