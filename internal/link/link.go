// Package link models the physical medium between two devices:
// propagation delay plus the failure modes NetSeer's inter-switch
// detection exists for — silent packet drops and corruption caused by
// contaminated connectors, bent fibre, decaying transmitters, etc. (§3.3).
//
// Serialization time is accounted by the transmitting port (it owns the
// line rate); a Link only delays, damages or destroys frames in flight.
package link

import (
	"netseer/internal/pkt"
	"netseer/internal/sim"
)

// Device is anything that can receive packets from a link: a switch
// pipeline or a host NIC.
type Device interface {
	// Receive delivers a packet arriving on the device's ingressPort.
	Receive(p *pkt.Packet, ingressPort int)
}

// Fault is an injectable per-direction failure process.
type Fault struct {
	// SilentLossProb silently destroys each frame with this probability.
	SilentLossProb float64
	// CorruptProb damages each frame with this probability; damaged frames
	// are delivered with Corrupt set (the receiving MAC drops them).
	CorruptProb float64
	// burst state: a scheduled run of consecutive losses.
	burstRemaining int
}

// Endpoint names one side of a link.
type Endpoint struct {
	Dev  Device
	Port int
}

// Link is a full-duplex medium between endpoints A and B.
type Link struct {
	sim  *sim.Simulator
	a, b Endpoint
	prop sim.Time

	faultAB Fault // applies to frames A→B
	faultBA Fault
	rng     *sim.Stream

	// Per-direction delivery stats.
	sentAB, deliveredAB, lostAB, corruptAB uint64
	sentBA, deliveredBA, lostBA, corruptBA uint64

	down bool

	// OnLost, when set, is invoked for every frame destroyed in flight
	// (silent loss, burst, down link) or damaged (corrupted=true; the
	// frame still delivers and the receiving MAC discards it). Fabric
	// builders use it to feed the ground-truth ledger.
	OnLost func(fromA bool, p *pkt.Packet, corrupted bool)
}

// New creates a link with the given propagation delay. rng drives the
// fault processes and must not be nil if faults are ever configured; pass
// any stream for fault-free links too (it is cheap).
func New(s *sim.Simulator, a, b Endpoint, prop sim.Time, rng *sim.Stream) *Link {
	if a.Dev == nil || b.Dev == nil {
		panic("link: endpoints must have devices")
	}
	if rng == nil {
		panic("link: rng must not be nil")
	}
	return &Link{sim: s, a: a, b: b, prop: prop, rng: rng}
}

// SetEndpoint rewires one side of the link. Fabric builders construct
// links before all devices exist and patch endpoints afterwards; frames
// already in flight deliver to the endpoint captured at send time.
func (l *Link) SetEndpoint(aSide bool, e Endpoint) {
	if e.Dev == nil {
		panic("link: endpoint device must not be nil")
	}
	if aSide {
		l.a = e
	} else {
		l.b = e
	}
}

// SetFault configures the failure process for the direction from the given
// side ("from A" means frames transmitted by endpoint A).
func (l *Link) SetFault(fromA bool, f Fault) {
	if fromA {
		l.faultAB = f
	} else {
		l.faultBA = f
	}
}

// InjectLossBurst destroys the next n frames in the given direction —
// the deterministic injector used to exercise consecutive-drop recovery
// (Fig. 15).
func (l *Link) InjectLossBurst(fromA bool, n int) {
	if fromA {
		l.faultAB.burstRemaining += n
	} else {
		l.faultBA.burstRemaining += n
	}
}

// SetDown marks the link administratively/physically down; both directions
// destroy all frames. (Port-down pipeline drops are detected at the
// transmitting switch before frames reach the link; SetDown models a cut
// in flight.)
func (l *Link) SetDown(down bool) { l.down = down }

// Down reports the link's down state.
func (l *Link) Down() bool { return l.down }

// PropDelay returns the propagation delay.
func (l *Link) PropDelay() sim.Time { return l.prop }

// Send transmits p from the given side. The packet is delivered to the
// opposite endpoint after the propagation delay, unless a fault destroys
// it. Send takes ownership of p.
func (l *Link) Send(fromA bool, p *pkt.Packet) {
	var fault *Fault
	var to Endpoint
	if fromA {
		fault, to = &l.faultAB, l.b
		l.sentAB++
	} else {
		fault, to = &l.faultBA, l.a
		l.sentBA++
	}
	if l.down {
		l.count(fromA, &l.lostAB, &l.lostBA)
		l.lost(fromA, p, false)
		return
	}
	if fault.burstRemaining > 0 {
		fault.burstRemaining--
		l.count(fromA, &l.lostAB, &l.lostBA)
		l.lost(fromA, p, false)
		return
	}
	if fault.SilentLossProb > 0 && l.rng.Bool(fault.SilentLossProb) {
		l.count(fromA, &l.lostAB, &l.lostBA)
		l.lost(fromA, p, false)
		return
	}
	if fault.CorruptProb > 0 && l.rng.Bool(fault.CorruptProb) {
		p.Corrupt = true
		l.count(fromA, &l.corruptAB, &l.corruptBA)
		l.lost(fromA, p, true)
	}
	l.count(fromA, &l.deliveredAB, &l.deliveredBA)
	port := to.Port
	dev := to.Dev
	l.sim.Schedule(l.prop, func() { dev.Receive(p, port) })
}

func (l *Link) lost(fromA bool, p *pkt.Packet, corrupted bool) {
	if l.OnLost != nil {
		l.OnLost(fromA, p, corrupted)
	}
}

func (l *Link) count(fromA bool, ab, ba *uint64) {
	if fromA {
		*ab++
	} else {
		*ba++
	}
}

// Stats reports per-direction counters: sent, delivered, silently lost,
// corrupted-but-delivered.
func (l *Link) Stats(fromA bool) (sent, delivered, lost, corrupt uint64) {
	if fromA {
		return l.sentAB, l.deliveredAB, l.lostAB, l.corruptAB
	}
	return l.sentBA, l.deliveredBA, l.lostBA, l.corruptBA
}
