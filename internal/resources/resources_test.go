package resources

import (
	"testing"
)

func TestHeadlineFigures(t *testing.T) {
	u := Estimate(Defaults())
	// §4: every class except stateful ALU below ~20% NetSeer-added usage;
	// stateful ALU ~40% total with batching+inter-switch ≈ 28 points.
	for _, cl := range Classes {
		if cl == StatefulALU {
			continue
		}
		if got := u.NetSeerOnly(cl); got > 0.20 {
			t.Errorf("%s NetSeer usage = %.0f%%, paper says <20%%", cl, got*100)
		}
	}
	alu := u.Total(StatefulALU)
	if alu < 0.35 || alu > 0.45 {
		t.Errorf("stateful ALU total = %.0f%%, paper says ~40%%", alu*100)
	}
	hot := u[StatefulALU][Batching] + u[StatefulALU][InterSwitch]
	if hot < 0.25 || hot > 0.31 {
		t.Errorf("batching+inter-switch ALU = %.0f%%, paper says 28%%", hot*100)
	}
}

func TestUsageScalesWithConfig(t *testing.T) {
	small := Estimate(Config{Ports: 32, RingSlots: 64, GroupSlots: 256, GroupTables: 3, PathSlots: 1024, StackDepth: 64})
	big := Estimate(Config{Ports: 64, RingSlots: 4096, GroupSlots: 16384, GroupTables: 3, PathSlots: 32768, StackDepth: 1024})
	if small.Total(SRAM) >= big.Total(SRAM) {
		t.Errorf("SRAM usage did not scale: %.3f vs %.3f", small.Total(SRAM), big.Total(SRAM))
	}
	// Float summation order over the map varies; compare with tolerance.
	if d := small.NetSeerOnly(StatefulALU) - big.NetSeerOnly(StatefulALU); d > 1e-9 || d < -1e-9 {
		t.Error("stateful ALU should be structural, not size-dependent")
	}
}

func TestAllFractionsInRange(t *testing.T) {
	u := Estimate(Defaults())
	for cl, comps := range u {
		for comp, f := range comps {
			if f < 0 || f > 1 {
				t.Errorf("%s/%s = %v out of [0,1]", cl, comp, f)
			}
		}
		if tot := u.Total(cl); tot > 1 {
			t.Errorf("%s total = %v exceeds the device", cl, tot)
		}
	}
}

func TestTablesRender(t *testing.T) {
	overall, detail := Estimate(Defaults()).Tables()
	if overall.Rows() != len(Classes) {
		t.Errorf("overall rows = %d", overall.Rows())
	}
	if detail.Rows() != len(Components) {
		t.Errorf("detail rows = %d", detail.Rows())
	}
	if overall.String() == "" || detail.String() == "" {
		t.Error("empty render")
	}
}
