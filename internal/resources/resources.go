// Package resources models the PDP resource accounting of Figure 7: how
// much of each Tofino resource class the NetSeer pipeline program
// consumes, overall and per component. The numbers derive from a static
// cost model of the program structure (tables, registers, hash units) —
// the same methodology the P4 compiler's resource report uses — scaled to
// a Tofino 32D-class target, and calibrated so the headline figures match
// the paper (§4): every class under 20% except stateful ALUs at ~40%, of
// which batching + inter-switch detection contribute 28 points.
package resources

import (
	"fmt"

	"netseer/internal/metrics"
)

// Class is one PDP resource class of Fig. 7(a).
type Class string

// Resource classes.
const (
	ExactXbar   Class = "Exact xbar"
	TernaryXbar Class = "Ternary xbar"
	HashBits    Class = "Hash bits"
	SRAM        Class = "SRAM"
	TCAM        Class = "TCAM"
	VLIWActions Class = "VLIW actions"
	StatefulALU Class = "Stateful ALU"
	PHV         Class = "PHV"
)

// Classes lists all classes in Fig. 7(a) order.
var Classes = []Class{ExactXbar, TernaryXbar, HashBits, SRAM, TCAM, VLIWActions, StatefulALU, PHV}

// Component is one NetSeer module of Fig. 7(b).
type Component string

// NetSeer components plus the baseline switch program.
const (
	SwitchP4    Component = "switch.p4"
	Detection   Component = "event detection"
	InterSwitch Component = "inter-switch"
	Dedup       Component = "deduplication"
	Batching    Component = "batching"
)

// Components lists the NetSeer components (excluding the baseline
// program).
var Components = []Component{Detection, InterSwitch, Dedup, Batching}

// Config describes the deployed NetSeer parameters that drive resource
// consumption.
type Config struct {
	// Ports on the switch (Tofino 32D: 32).
	Ports int
	// RingSlots per port (inter-switch SRAM).
	RingSlots int
	// GroupSlots per event-type table, and the number of tables.
	GroupSlots  int
	GroupTables int
	// PathSlots in the path-change table.
	PathSlots int
	// StackDepth of the CEBP event stack.
	StackDepth int
}

// Defaults returns the paper's deployment configuration.
func Defaults() Config {
	return Config{
		Ports: 32, RingSlots: 1024,
		GroupSlots: 4096, GroupTables: 3,
		PathSlots: 8192, StackDepth: 512,
	}
}

// Tofino 32D-class budget used to normalize usage into fractions.
const (
	totalSRAMBytes   = 22 << 20 // ~22 MB usable SRAM
	totalStatefulALU = 48       // 4 per stage × 12 stages
	totalHashBits    = 4992     // 416 per stage × 12
	totalVLIW        = 384      // 32 per stage × 12
	totalExactXbar   = 1536     // 128 per stage × 12
	totalTernaryXbar = 528      // 44 per stage × 12
	totalTCAMBytes   = 1 << 20
	totalPHVBits     = 4096
)

// Usage is the fraction [0,1] of one resource class one component uses.
type Usage map[Class]map[Component]float64

// Estimate produces the per-component, per-class usage fractions for a
// configuration.
func Estimate(cfg Config) Usage {
	u := make(Usage)
	add := func(cl Class, comp Component, frac float64) {
		if u[cl] == nil {
			u[cl] = make(map[Component]float64)
		}
		u[cl][comp] += frac
	}

	// Baseline switch.p4 (L2/L3 forwarding, ACL): the published profile —
	// it already uses a large share of TCAM and xbars.
	add(ExactXbar, SwitchP4, 0.12)
	add(TernaryXbar, SwitchP4, 0.14)
	add(HashBits, SwitchP4, 0.10)
	add(SRAM, SwitchP4, 0.14)
	add(TCAM, SwitchP4, 0.16)
	add(VLIWActions, SwitchP4, 0.11)
	add(StatefulALU, SwitchP4, 0.06)
	add(PHV, SwitchP4, 0.17)

	// Event detection: drop-reason tables, congestion threshold compare,
	// path table, pause state. Mostly match crossbars + a little SRAM.
	pathBytes := float64(cfg.PathSlots) * 20
	add(ExactXbar, Detection, 0.02)
	add(TernaryXbar, Detection, 0.02)
	add(HashBits, Detection, 0.03)
	add(SRAM, Detection, pathBytes/totalSRAMBytes)
	add(VLIWActions, Detection, 0.03)
	add(StatefulALU, Detection, 0.03)
	add(PHV, Detection, 0.02)

	// Inter-switch: per-port rings (SRAM) + seq counters + gap trackers —
	// register-heavy.
	ringBytes := float64(cfg.Ports*cfg.RingSlots) * 20
	add(SRAM, InterSwitch, ringBytes/totalSRAMBytes)
	add(HashBits, InterSwitch, 0.02)
	add(StatefulALU, InterSwitch, 0.145)
	add(VLIWActions, InterSwitch, 0.02)
	add(PHV, InterSwitch, 0.02)

	// Dedup: group caching tables — exact-match SRAM + one register pair
	// (counter, target) per table.
	groupBytes := float64(cfg.GroupTables*cfg.GroupSlots) * 24
	add(SRAM, Dedup, groupBytes/totalSRAMBytes)
	add(ExactXbar, Dedup, 0.02)
	add(HashBits, Dedup, 0.03)
	add(StatefulALU, Dedup, 0.03)
	add(VLIWActions, Dedup, 0.02)
	add(PHV, Dedup, 0.01)

	// Batching: cross-stage stack + CEBP bookkeeping — the most
	// register-hungry module (§4: batching + inter-switch = 28 points of
	// stateful ALU).
	stackBytes := float64(cfg.StackDepth) * 24
	add(SRAM, Batching, stackBytes/totalSRAMBytes)
	add(StatefulALU, Batching, 0.135)
	add(VLIWActions, Batching, 0.02)
	add(PHV, Batching, 0.02)

	return u
}

// Total returns the summed usage of a class across all components.
func (u Usage) Total(cl Class) float64 {
	var sum float64
	for _, f := range u[cl] {
		sum += f
	}
	return sum
}

// NetSeerOnly returns the class usage excluding the baseline switch.p4.
func (u Usage) NetSeerOnly(cl Class) float64 {
	var sum float64
	for comp, f := range u[cl] {
		if comp != SwitchP4 {
			sum += f
		}
	}
	return sum
}

// Tables renders the Fig. 7(a) overall and Fig. 7(b) per-component
// views.
func (u Usage) Tables() (overall, detail *metrics.Table) {
	overall = metrics.NewTable("Fig 7(a): overall PDP resource usage", "resource", "switch.p4", "+NetSeer")
	for _, cl := range Classes {
		base := u[cl][SwitchP4]
		overall.AddRow(string(cl),
			fmt.Sprintf("%.0f%%", base*100),
			fmt.Sprintf("%.0f%%", u.Total(cl)*100))
	}
	detail = metrics.NewTable("Fig 7(b): NetSeer per-component usage", "component", "SRAM", "stateful ALU", "hash bits")
	for _, comp := range Components {
		detail.AddRow(string(comp),
			fmt.Sprintf("%.1f%%", u[SRAM][comp]*100),
			fmt.Sprintf("%.1f%%", u[StatefulALU][comp]*100),
			fmt.Sprintf("%.1f%%", u[HashBits][comp]*100))
	}
	return overall, detail
}
