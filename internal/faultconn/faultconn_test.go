package faultconn

import (
	"bytes"
	"io"
	"net"
	"testing"
	"time"
)

// pipeConn returns a wrapped server-side conn and the raw client side.
func pipeConn(t *testing.T, cfg Config) (wrapped net.Conn, raw net.Conn) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	done := make(chan struct{})
	go func() {
		defer close(done)
		c, err := ln.Accept()
		if err != nil {
			t.Error(err)
			return
		}
		wrapped = WrapConn(c, cfg, cfg.Seed)
	}()
	raw, err = net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	<-done
	t.Cleanup(func() { raw.Close(); wrapped.Close() })
	return wrapped, raw
}

func TestPassThroughWhenNoFaults(t *testing.T) {
	w, raw := pipeConn(t, Config{Seed: 1})
	msg := []byte("hello telemetry")
	if _, err := w.Write(msg); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(msg))
	if _, err := io.ReadFull(raw, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Errorf("got %q, want %q", got, msg)
	}
}

func TestResetAfterBudget(t *testing.T) {
	w, _ := pipeConn(t, Config{Seed: 3, ResetAfter: 64})
	buf := make([]byte, 16)
	var wrote int
	var err error
	for i := 0; i < 100; i++ {
		var n int
		n, err = w.Write(buf)
		wrote += n
		if err != nil {
			break
		}
	}
	if err != ErrInjectedReset {
		t.Fatalf("err = %v, want ErrInjectedReset", err)
	}
	if wrote < 32 || wrote > 64 {
		t.Errorf("reset after %d bytes, want within [32, 64]", wrote)
	}
	// The connection is genuinely dead afterwards.
	if _, err := w.Write(buf); err == nil {
		t.Error("write after injected reset succeeded")
	}
}

func TestPartialWritesStillDeliverEverything(t *testing.T) {
	w, raw := pipeConn(t, Config{Seed: 5, MaxChunk: 3})
	msg := bytes.Repeat([]byte{0xAB, 0xCD}, 100)
	if n, err := w.Write(msg); err != nil || n != len(msg) {
		t.Fatalf("write = %d, %v", n, err)
	}
	got := make([]byte, len(msg))
	raw.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := io.ReadFull(raw, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Error("chunked write corrupted the payload")
	}
}

func TestCorruptionIsDeterministic(t *testing.T) {
	run := func(seed int64) []byte {
		w, raw := pipeConn(t, Config{Seed: seed, CorruptProb: 1})
		msg := bytes.Repeat([]byte{0x11}, 32)
		if _, err := w.Write(msg); err != nil {
			t.Fatal(err)
		}
		got := make([]byte, len(msg))
		raw.SetReadDeadline(time.Now().Add(2 * time.Second))
		if _, err := io.ReadFull(raw, got); err != nil {
			t.Fatal(err)
		}
		return got
	}
	a, b := run(42), run(42)
	if !bytes.Equal(a, b) {
		t.Error("same seed produced different corruption")
	}
	if bytes.Equal(a, bytes.Repeat([]byte{0x11}, 32)) {
		t.Error("CorruptProb=1 corrupted nothing")
	}
}

func TestListenerDerivesPerConnSeeds(t *testing.T) {
	ln, err := Listen("127.0.0.1:0", Config{Seed: 9, ResetAfter: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	accepted := make(chan net.Conn, 2)
	go func() {
		for i := 0; i < 2; i++ {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			accepted <- c
		}
	}()
	for i := 0; i < 2; i++ {
		c, err := net.Dial("tcp", ln.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
	}
	b1 := (<-accepted).(*Conn).budgetW
	b2 := (<-accepted).(*Conn).budgetW
	if b1 == b2 {
		t.Errorf("both conns drew identical reset budgets (%d) — sub-seeding broken", b1)
	}
}
