// Package faultconn wraps net.Conn/net.Listener with deterministic
// fault injection — connection resets, partial writes, added latency,
// byte corruption, and asymmetric partitions — for chaos-testing the
// switch-CPU→collector channel. All fault decisions are drawn from a
// seeded PRNG (one sub-stream per accepted connection), so a failing run
// reproduces from its seed.
package faultconn

import (
	"errors"
	"math/rand"
	"net"
	"sync"
	"time"
)

// ErrInjectedReset is returned by Read/Write when the configured byte
// budget runs out and the connection is forcibly closed.
var ErrInjectedReset = errors.New("faultconn: injected connection reset")

// Direction selects which way bytes flow through a wrapped connection,
// as seen from the wrapped (usually server-side) endpoint.
type Direction int

const (
	// Inbound is the peer→wrapped direction: partitioning it starves
	// Read without disturbing the peer's view of its own writes.
	Inbound Direction = 1 << iota
	// Outbound is the wrapped→peer direction: partitioning it stalls
	// Write (acks, responses) while requests keep arriving.
	Outbound
)

// Config selects which faults to inject. Zero values disable each fault.
type Config struct {
	// Seed drives every fault decision deterministically.
	Seed int64
	// ResetAfter forcibly closes the connection after roughly this many
	// bytes have crossed it in one direction (each direction draws its
	// own budget uniformly from [ResetAfter/2, ResetAfter], so a reset
	// can land mid-read or mid-write independently).
	ResetAfter int
	// MaxChunk splits writes into chunks of at most this many bytes,
	// exercising short-write handling.
	MaxChunk int
	// CorruptProb flips one byte per Read/Write call with this
	// probability, exercising checksum validation.
	CorruptProb float64
	// Latency sleeps this long before every write.
	Latency time.Duration

	// PartitionDir, when non-zero, schedules an asymmetric partition:
	// the selected direction(s) stall — a Read or Write in a partitioned
	// direction blocks until the partition heals or the connection's
	// deadline passes — while the opposite direction flows normally,
	// like a one-way link failure. The partition starts PartitionAfter
	// after the connection is wrapped and heals after PartitionFor
	// (0 = never heals on its own). Listener.Partition/Heal override the
	// schedule at runtime.
	PartitionDir   Direction
	PartitionAfter time.Duration
	PartitionFor   time.Duration
}

// partitionState is the runtime partition switch shared by a Listener
// and every connection it accepted, so a test can cut and heal one
// direction across all live connections at once.
type partitionState struct {
	mu  sync.Mutex
	dir Direction // currently partitioned directions (manual override)
	set bool      // manual override active (ignore the config schedule)
}

func (p *partitionState) partition(dir Direction) {
	p.mu.Lock()
	p.dir, p.set = dir, true
	p.mu.Unlock()
}

func (p *partitionState) heal() {
	p.mu.Lock()
	p.dir, p.set = 0, true
	p.mu.Unlock()
}

// blocked reports whether dir is partitioned right now for a connection
// created at start, combining the manual override with the configured
// schedule.
func (p *partitionState) blocked(cfg Config, start time.Time, dir Direction) bool {
	if p != nil {
		p.mu.Lock()
		set, cur := p.set, p.dir
		p.mu.Unlock()
		if set {
			return cur&dir != 0
		}
	}
	if cfg.PartitionDir&dir == 0 {
		return false
	}
	since := time.Since(start)
	if since < cfg.PartitionAfter {
		return false
	}
	if cfg.PartitionFor > 0 && since >= cfg.PartitionAfter+cfg.PartitionFor {
		return false
	}
	return true
}

// Listener wraps a net.Listener so every accepted connection injects the
// configured faults.
type Listener struct {
	net.Listener
	cfg Config

	mu     sync.Mutex
	nconns int64
	part   partitionState
}

// Wrap returns a fault-injecting view of ln.
func Wrap(ln net.Listener, cfg Config) *Listener {
	return &Listener{Listener: ln, cfg: cfg}
}

// Partition cuts the given direction(s) on every connection this
// listener has accepted or will accept, overriding any configured
// schedule, until Heal is called.
func (l *Listener) Partition(dir Direction) { l.part.partition(dir) }

// Heal restores both directions on every connection of this listener.
func (l *Listener) Heal() { l.part.heal() }

// Listen opens a TCP listener on addr with fault injection.
func Listen(addr string, cfg Config) (*Listener, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	return Wrap(ln, cfg), nil
}

// Accept wraps the next connection with its own deterministic fault
// stream.
func (l *Listener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	l.mu.Lock()
	l.nconns++
	n := l.nconns
	l.mu.Unlock()
	// Derive a distinct, reproducible sub-seed per connection.
	fc := WrapConn(c, l.cfg, l.cfg.Seed^(n*0x9e3779b97f4a7c))
	fc.part = &l.part
	return fc, nil
}

// Conn injects faults on one connection.
type Conn struct {
	net.Conn
	cfg   Config
	start time.Time
	part  *partitionState // shared with the Listener; nil for WrapConn

	mu        sync.Mutex
	rng       *rand.Rand
	budgetR   int // inbound bytes until injected reset; -1 = unlimited
	budgetW   int // outbound bytes until injected reset; -1 = unlimited
	deadlineR time.Time
	deadlineW time.Time
	closed    bool
}

// Close unblocks any partition wait before closing the wrapped conn.
func (c *Conn) Close() error {
	c.mu.Lock()
	c.closed = true
	c.mu.Unlock()
	return c.Conn.Close()
}

// WrapConn wraps one connection with the given fault config and seed.
func WrapConn(c net.Conn, cfg Config, seed int64) *Conn {
	rng := rand.New(rand.NewSource(seed))
	drawBudget := func() int {
		if cfg.ResetAfter <= 0 {
			return -1
		}
		return cfg.ResetAfter/2 + rng.Intn(cfg.ResetAfter/2+1)
	}
	return &Conn{Conn: c, cfg: cfg, start: time.Now(), rng: rng,
		budgetR: drawBudget(), budgetW: drawBudget()}
}

// SetDeadline mirrors the deadline so partition waits can respect it.
func (c *Conn) SetDeadline(t time.Time) error {
	c.mu.Lock()
	c.deadlineR, c.deadlineW = t, t
	c.mu.Unlock()
	return c.Conn.SetDeadline(t)
}

// SetReadDeadline mirrors the read deadline for partition waits.
func (c *Conn) SetReadDeadline(t time.Time) error {
	c.mu.Lock()
	c.deadlineR = t
	c.mu.Unlock()
	return c.Conn.SetReadDeadline(t)
}

// SetWriteDeadline mirrors the write deadline for partition waits.
func (c *Conn) SetWriteDeadline(t time.Time) error {
	c.mu.Lock()
	c.deadlineW = t
	c.mu.Unlock()
	return c.Conn.SetWriteDeadline(t)
}

// awaitPartition blocks while dir is partitioned, returning once the
// partition heals or the direction's deadline passes (the delegated
// Read/Write then surfaces the usual timeout error). Polling keeps the
// implementation independent of how the partition is controlled.
func (c *Conn) awaitPartition(dir Direction) {
	for c.part.blocked(c.cfg, c.start, dir) {
		c.mu.Lock()
		deadline, closed := c.deadlineR, c.closed
		if dir == Outbound {
			deadline = c.deadlineW
		}
		c.mu.Unlock()
		if closed || (!deadline.IsZero() && time.Now().After(deadline)) {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// Write injects latency, chunking, corruption and resets, then forwards
// to the wrapped connection.
func (c *Conn) Write(p []byte) (int, error) {
	c.awaitPartition(Outbound)
	if c.cfg.Latency > 0 {
		time.Sleep(c.cfg.Latency)
	}
	written := 0
	for written < len(p) {
		chunk := p[written:]
		c.mu.Lock()
		if c.budgetW == 0 {
			c.mu.Unlock()
			c.Conn.Close()
			return written, ErrInjectedReset
		}
		if c.cfg.MaxChunk > 0 && len(chunk) > c.cfg.MaxChunk {
			chunk = chunk[:c.cfg.MaxChunk]
		}
		if c.budgetW > 0 && len(chunk) > c.budgetW {
			chunk = chunk[:c.budgetW]
		}
		if c.cfg.CorruptProb > 0 && c.rng.Float64() < c.cfg.CorruptProb {
			flipped := append([]byte(nil), chunk...)
			flipped[c.rng.Intn(len(flipped))] ^= 0xff
			chunk = flipped
		}
		if c.budgetW > 0 {
			c.budgetW -= len(chunk)
		}
		c.mu.Unlock()
		n, err := c.Conn.Write(chunk)
		written += n
		if err != nil {
			return written, err
		}
	}
	return written, nil
}

// Read injects corruption and resets on the inbound direction.
func (c *Conn) Read(p []byte) (int, error) {
	c.awaitPartition(Inbound)
	c.mu.Lock()
	if c.budgetR == 0 {
		c.mu.Unlock()
		c.Conn.Close()
		return 0, ErrInjectedReset
	}
	limit := len(p)
	if c.budgetR > 0 && limit > c.budgetR {
		limit = c.budgetR
	}
	c.mu.Unlock()
	n, err := c.Conn.Read(p[:limit])
	if n > 0 {
		c.mu.Lock()
		if c.cfg.CorruptProb > 0 && c.rng.Float64() < c.cfg.CorruptProb {
			p[c.rng.Intn(n)] ^= 0xff
		}
		if c.budgetR > 0 {
			c.budgetR -= n
		}
		c.mu.Unlock()
	}
	return n, err
}
