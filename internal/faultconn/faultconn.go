// Package faultconn wraps net.Conn/net.Listener with deterministic
// fault injection — connection resets, partial writes, added latency,
// and byte corruption — for chaos-testing the switch-CPU→collector
// channel. All fault decisions are drawn from a seeded PRNG (one
// sub-stream per accepted connection), so a failing run reproduces from
// its seed.
package faultconn

import (
	"errors"
	"math/rand"
	"net"
	"sync"
	"time"
)

// ErrInjectedReset is returned by Read/Write when the configured byte
// budget runs out and the connection is forcibly closed.
var ErrInjectedReset = errors.New("faultconn: injected connection reset")

// Config selects which faults to inject. Zero values disable each fault.
type Config struct {
	// Seed drives every fault decision deterministically.
	Seed int64
	// ResetAfter forcibly closes the connection after roughly this many
	// bytes have crossed it in one direction (each direction draws its
	// own budget uniformly from [ResetAfter/2, ResetAfter], so a reset
	// can land mid-read or mid-write independently).
	ResetAfter int
	// MaxChunk splits writes into chunks of at most this many bytes,
	// exercising short-write handling.
	MaxChunk int
	// CorruptProb flips one byte per Read/Write call with this
	// probability, exercising checksum validation.
	CorruptProb float64
	// Latency sleeps this long before every write.
	Latency time.Duration
}

// Listener wraps a net.Listener so every accepted connection injects the
// configured faults.
type Listener struct {
	net.Listener
	cfg Config

	mu     sync.Mutex
	nconns int64
}

// Wrap returns a fault-injecting view of ln.
func Wrap(ln net.Listener, cfg Config) *Listener {
	return &Listener{Listener: ln, cfg: cfg}
}

// Listen opens a TCP listener on addr with fault injection.
func Listen(addr string, cfg Config) (*Listener, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	return Wrap(ln, cfg), nil
}

// Accept wraps the next connection with its own deterministic fault
// stream.
func (l *Listener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	l.mu.Lock()
	l.nconns++
	n := l.nconns
	l.mu.Unlock()
	// Derive a distinct, reproducible sub-seed per connection.
	return WrapConn(c, l.cfg, l.cfg.Seed^(n*0x9e3779b97f4a7c)), nil
}

// Conn injects faults on one connection.
type Conn struct {
	net.Conn
	cfg Config

	mu      sync.Mutex
	rng     *rand.Rand
	budgetR int // inbound bytes until injected reset; -1 = unlimited
	budgetW int // outbound bytes until injected reset; -1 = unlimited
}

// WrapConn wraps one connection with the given fault config and seed.
func WrapConn(c net.Conn, cfg Config, seed int64) *Conn {
	rng := rand.New(rand.NewSource(seed))
	drawBudget := func() int {
		if cfg.ResetAfter <= 0 {
			return -1
		}
		return cfg.ResetAfter/2 + rng.Intn(cfg.ResetAfter/2+1)
	}
	return &Conn{Conn: c, cfg: cfg, rng: rng, budgetR: drawBudget(), budgetW: drawBudget()}
}

// Write injects latency, chunking, corruption and resets, then forwards
// to the wrapped connection.
func (c *Conn) Write(p []byte) (int, error) {
	if c.cfg.Latency > 0 {
		time.Sleep(c.cfg.Latency)
	}
	written := 0
	for written < len(p) {
		chunk := p[written:]
		c.mu.Lock()
		if c.budgetW == 0 {
			c.mu.Unlock()
			c.Conn.Close()
			return written, ErrInjectedReset
		}
		if c.cfg.MaxChunk > 0 && len(chunk) > c.cfg.MaxChunk {
			chunk = chunk[:c.cfg.MaxChunk]
		}
		if c.budgetW > 0 && len(chunk) > c.budgetW {
			chunk = chunk[:c.budgetW]
		}
		if c.cfg.CorruptProb > 0 && c.rng.Float64() < c.cfg.CorruptProb {
			flipped := append([]byte(nil), chunk...)
			flipped[c.rng.Intn(len(flipped))] ^= 0xff
			chunk = flipped
		}
		if c.budgetW > 0 {
			c.budgetW -= len(chunk)
		}
		c.mu.Unlock()
		n, err := c.Conn.Write(chunk)
		written += n
		if err != nil {
			return written, err
		}
	}
	return written, nil
}

// Read injects corruption and resets on the inbound direction.
func (c *Conn) Read(p []byte) (int, error) {
	c.mu.Lock()
	if c.budgetR == 0 {
		c.mu.Unlock()
		c.Conn.Close()
		return 0, ErrInjectedReset
	}
	limit := len(p)
	if c.budgetR > 0 && limit > c.budgetR {
		limit = c.budgetR
	}
	c.mu.Unlock()
	n, err := c.Conn.Read(p[:limit])
	if n > 0 {
		c.mu.Lock()
		if c.cfg.CorruptProb > 0 && c.rng.Float64() < c.cfg.CorruptProb {
			p[c.rng.Intn(n)] ^= 0xff
		}
		if c.budgetR > 0 {
			c.budgetR -= n
		}
		c.mu.Unlock()
	}
	return n, err
}
