package faultconn

import (
	"io"
	"net"
	"testing"
	"time"
)

// lnPair dials a fault-injecting listener and returns the wrapped
// server-side conn plus the raw client side.
func lnPair(t *testing.T, cfg Config) (*Listener, net.Conn, net.Conn) {
	t.Helper()
	ln, err := Listen("127.0.0.1:0", cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	accepted := make(chan net.Conn, 1)
	go func() {
		c, err := ln.Accept()
		if err != nil {
			return
		}
		accepted <- c
	}()
	raw, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	wrapped := <-accepted
	t.Cleanup(func() { raw.Close(); wrapped.Close() })
	return ln, wrapped, raw
}

func TestScheduledPartitionHealsOnItsOwn(t *testing.T) {
	const heal = 80 * time.Millisecond
	_, wrapped, raw := lnPair(t, Config{
		Seed: 7, PartitionDir: Outbound, PartitionFor: heal,
	})
	start := time.Now()
	msg := []byte("delayed by one-way partition")
	if _, err := wrapped.Write(msg); err != nil {
		t.Fatal(err)
	}
	if held := time.Since(start); held < heal {
		t.Errorf("write returned after %v, want >= %v (partition window)", held, heal)
	}
	got := make([]byte, len(msg))
	raw.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := io.ReadFull(raw, got); err != nil {
		t.Fatal(err)
	}
	if string(got) != string(msg) {
		t.Errorf("payload corrupted across heal: %q", got)
	}
}

func TestManualPartitionIsAsymmetric(t *testing.T) {
	ln, wrapped, raw := lnPair(t, Config{Seed: 11})
	ln.Partition(Inbound)

	// Outbound (wrapped→raw) still flows while inbound is cut.
	if _, err := wrapped.Write([]byte("ack")); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 3)
	raw.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := io.ReadFull(raw, got); err != nil {
		t.Fatalf("outbound direction blocked by inbound partition: %v", err)
	}

	// Inbound (raw→wrapped) stalls until Heal.
	if _, err := raw.Write([]byte("req")); err != nil {
		t.Fatal(err)
	}
	readDone := make(chan error, 1)
	go func() {
		buf := make([]byte, 3)
		_, err := io.ReadFull(wrapped, buf)
		readDone <- err
	}()
	select {
	case err := <-readDone:
		t.Fatalf("read completed through an inbound partition (err=%v)", err)
	case <-time.After(60 * time.Millisecond):
	}
	ln.Heal()
	select {
	case err := <-readDone:
		if err != nil {
			t.Fatalf("read after heal: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("read still blocked after Heal")
	}
}

func TestPartitionRespectsDeadline(t *testing.T) {
	ln, wrapped, _ := lnPair(t, Config{Seed: 13})
	ln.Partition(Outbound)
	wrapped.SetWriteDeadline(time.Now().Add(50 * time.Millisecond))
	start := time.Now()
	_, err := wrapped.Write([]byte("never delivered"))
	if err == nil {
		t.Fatal("write through a partition with an expired deadline succeeded")
	}
	ne, ok := err.(net.Error)
	if !ok || !ne.Timeout() {
		t.Fatalf("err = %v, want a timeout net.Error", err)
	}
	if time.Since(start) > 2*time.Second {
		t.Error("deadline-bounded partition wait took too long")
	}
}

func TestCloseUnblocksPartitionWait(t *testing.T) {
	ln, wrapped, _ := lnPair(t, Config{Seed: 17})
	ln.Partition(Outbound)
	done := make(chan struct{})
	go func() {
		wrapped.Write([]byte("x"))
		close(done)
	}()
	time.Sleep(20 * time.Millisecond)
	wrapped.Close()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Write still blocked after Close")
	}
}
