package sim

import "testing"

// TestCancelStress: pseudorandom schedule/cancel interleaving must keep
// the heap ordered (executed instants non-decreasing) and execute exactly
// the non-canceled events. The mid-heap removals exercise both sift
// directions of the hand-rolled heap.
func TestCancelStress(t *testing.T) {
	s := New()
	rng := NewStream(5, "cancel-stress")
	var handles []Handle
	for i := 0; i < 300; i++ {
		h := s.At(Time(rng.Intn(50)), func() {})
		handles = append(handles, h)
	}
	canceled := 0
	for _, i := range rng.Perm(len(handles)) {
		if i%3 == 0 {
			if !s.Cancel(handles[i]) {
				t.Fatalf("cancel of pending event %d failed", i)
			}
			canceled++
		}
	}
	var prev Time
	executed := 0
	for s.Pending() > 0 {
		at := s.NextAt()
		if at < prev {
			t.Fatalf("heap disorder: next %v after %v", at, prev)
		}
		prev = at
		s.Step()
		executed++
	}
	if executed != len(handles)-canceled {
		t.Errorf("executed %d events, want %d", executed, len(handles)-canceled)
	}
}

// TestTickerStopIdempotent: stopping a ticker twice is a no-op, and no
// tick fires afterwards.
func TestTickerStopIdempotent(t *testing.T) {
	s := New()
	n := 0
	tk := s.Every(10, func() { n++ })
	s.Run(25)
	tk.Stop()
	tk.Stop()
	s.Run(100)
	if n != 2 {
		t.Errorf("ticks after stop: got %d total, want 2", n)
	}
}

// TestEveryRejectsNonPositiveInterval covers the Every guard.
func TestEveryRejectsNonPositiveInterval(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Every(0) did not panic")
		}
	}()
	New().Every(0, func() {})
}

// TestStreamEdges covers the small Stream helpers: Intn's guard, Uint32
// draws, and Exp staying non-negative.
func TestStreamEdges(t *testing.T) {
	r := NewStream(1, "edges")
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Intn(0) did not panic")
			}
		}()
		r.Intn(0)
	}()
	if a, b := r.Uint32(), r.Uint32(); a == b {
		t.Errorf("consecutive Uint32 draws identical: %d", a)
	}
	for i := 0; i < 100; i++ {
		if v := r.Exp(3.0); v < 0 {
			t.Fatalf("Exp draw negative: %v", v)
		}
	}
	if r.Bool(0) || !r.Bool(1) {
		t.Error("Bool(0)/Bool(1) must be constant false/true")
	}
}
