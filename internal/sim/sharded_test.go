package sim

import (
	"fmt"
	"reflect"
	"testing"
)

// traceEntry is one executed event in a shard's log: (shard, instant, tag).
type traceEntry struct {
	shard int
	at    Time
	tag   int
}

// buildPingPong wires a deterministic cross-shard workload onto a fresh
// engine: every shard seeds a few local events, and each event forwards a
// tagged message to the next shard with a delay drawn from a named stream
// (always >= lookahead), bouncing until its hop budget runs out. Returns
// the engine and per-shard logs (appended by the shard's own events, so
// log order == that shard's execution order).
func buildPingPong(shards, workers int, lookahead Time, seed uint64) (*ShardedEngine, []*[]traceEntry) {
	e := NewSharded(shards, lookahead, workers)
	logs := make([]*[]traceEntry, shards)
	for i := range logs {
		logs[i] = new([]traceEntry)
	}
	rng := NewStream(seed, "pingpong")
	var bounce func(sh *Shard, tag, hops int)
	bounce = func(sh *Shard, tag, hops int) {
		*logs[sh.ID()] = append(*logs[sh.ID()], traceEntry{sh.ID(), sh.Sim().Now(), tag})
		if hops == 0 {
			return
		}
		dst := e.Shard((sh.ID() + 1) % e.NumShards())
		// Delay derived from the tag, not the rng: the rng draw order would
		// depend on execution interleaving across shards.
		d := lookahead + Time(tag%7)*lookahead
		sh.Defer(dst, d, func() { bounce(dst, tag, hops-1) })
	}
	for i := 0; i < shards; i++ {
		sh := e.Shard(i)
		for j := 0; j < 4; j++ {
			tag := i*100 + j
			at := Time(rng.Intn(5)) * lookahead
			sh.Sim().At(at, func() { bounce(sh, tag, 5) })
		}
	}
	return e, logs
}

func collectLogs(logs []*[]traceEntry) [][]traceEntry {
	out := make([][]traceEntry, len(logs))
	for i, l := range logs {
		out[i] = append([]traceEntry(nil), (*l)...)
	}
	return out
}

// TestShardedDeterministicAcrossWorkers: per-shard execution order must be
// identical at every worker count, including the inline workers=1 path.
func TestShardedDeterministicAcrossWorkers(t *testing.T) {
	const shards = 5
	la := Microsecond
	var want [][]traceEntry
	for _, workers := range []int{1, 2, 4, 8} {
		e, logs := buildPingPong(shards, workers, la, 42)
		e.Drain()
		got := collectLogs(logs)
		if want == nil {
			want = got
			continue
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("workers=%d: execution trace differs from workers=1", workers)
		}
	}
}

// TestShardedRunMatchesSequential: a 1-shard engine must behave exactly
// like a plain Simulator — same events, same final clock, events at the
// until instant included.
func TestShardedRunMatchesSequential(t *testing.T) {
	e := NewSharded(1, Microsecond, 1)
	sh := e.Shard(0)
	plain := New()
	var a, b []Time
	for _, at := range []Time{0, 5, 10, 10, 20, 35} {
		at := at
		sh.Sim().At(at, func() { a = append(a, sh.Sim().Now()) })
		plain.At(at, func() { b = append(b, plain.Now()) })
	}
	e.Run(10)
	plain.Run(10)
	if !reflect.DeepEqual(a, b) {
		t.Errorf("executed instants differ: engine %v, plain %v", a, b)
	}
	if sh.Sim().Now() != plain.Now() {
		t.Errorf("clocks differ after Run(10): engine %v, plain %v", sh.Sim().Now(), plain.Now())
	}
	// The rest drains identically; Drain leaves the clock at the last
	// event like RunAll.
	e.Drain()
	plain.RunAll()
	if !reflect.DeepEqual(a, b) || sh.Sim().Now() != plain.Now() {
		t.Errorf("after drain: engine %v@%v, plain %v@%v", a, sh.Sim().Now(), b, plain.Now())
	}
}

// TestShardedRunAdvancesAllClocks: Run(until) must advance every shard
// clock to until — including shards that had nothing to execute — so
// time-stamped flushes after the run agree across shards.
func TestShardedRunAdvancesAllClocks(t *testing.T) {
	e := NewSharded(3, Microsecond, 1)
	e.Shard(0).Sim().At(3*Microsecond, func() {})
	if got := e.Run(9 * Microsecond); got != 9*Microsecond {
		t.Fatalf("Run returned %v, want 9us", got)
	}
	for i := 0; i < e.NumShards(); i++ {
		if now := e.Shard(i).Sim().Now(); now != 9*Microsecond {
			t.Errorf("shard %d clock %v after Run, want 9us", i, now)
		}
	}
}

// TestShardedDrainSyncsClocks: Drain must leave every shard clock at the
// globally latest executed instant and no events pending.
func TestShardedDrainSyncsClocks(t *testing.T) {
	e, _ := buildPingPong(4, 2, Microsecond, 9)
	last := e.Drain()
	if last == 0 {
		t.Fatal("Drain returned 0 — nothing executed")
	}
	for i := 0; i < e.NumShards(); i++ {
		sh := e.Shard(i)
		if sh.Sim().Pending() != 0 {
			t.Errorf("shard %d still has %d pending events after Drain", i, sh.Sim().Pending())
		}
		if sh.Sim().Now() != last {
			t.Errorf("shard %d clock %v after Drain, want %v", i, sh.Sim().Now(), last)
		}
	}
}

// TestDeferPanicsUnderLookahead: a cross-shard delay below the lookahead
// would deliver into the destination's past — the engine must refuse it.
// Same-shard Defer is local scheduling and takes any delay.
func TestDeferPanicsUnderLookahead(t *testing.T) {
	e := NewSharded(2, Microsecond, 1)
	src, dst := e.Shard(0), e.Shard(1)
	src.Defer(src, 1, func() {}) // same-shard: under-lookahead is fine
	func() {
		defer func() {
			if recover() == nil {
				t.Error("cross-shard Defer under lookahead did not panic")
			}
		}()
		src.Defer(dst, Microsecond-1, func() {})
	}()
}

// TestDeliverTo: the bound delivery functions route to the right heap —
// local immediately schedulable, remote visible only after the barrier.
func TestDeliverTo(t *testing.T) {
	e := NewSharded(2, Microsecond, 1)
	a, b := e.Shard(0), e.Shard(1)
	var gotLocal, gotRemote bool
	local := a.DeliverTo(a)
	remote := a.DeliverTo(b)
	local(0, func() { gotLocal = true })
	remote(Microsecond, func() { gotRemote = true })
	if a.Sim().Pending() != 1 {
		t.Errorf("local delivery not on shard 0's heap (pending=%d)", a.Sim().Pending())
	}
	if b.Sim().Pending() != 0 {
		t.Errorf("remote delivery reached shard 1 before the barrier (pending=%d)", b.Sim().Pending())
	}
	e.Drain()
	if !gotLocal || !gotRemote {
		t.Errorf("deliveries dropped: local=%v remote=%v", gotLocal, gotRemote)
	}
}

// TestNewShardedValidation: the constructor rejects nonsensical
// configurations; worker counts are clamped to >= 1.
func TestNewShardedValidation(t *testing.T) {
	for name, build := range map[string]func(){
		"zero shards":    func() { NewSharded(0, Microsecond, 1) },
		"zero lookahead": func() { NewSharded(1, 0, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			build()
		}()
	}
	e := NewSharded(2, Microsecond, 0) // clamps to 1 worker
	if e.Lookahead() != Microsecond || e.NumShards() != 2 {
		t.Errorf("accessors: lookahead %v shards %d", e.Lookahead(), e.NumShards())
	}
	e.SetWorkers(-3) // also clamps; the engine must still run
	e.Shard(0).Sim().At(0, func() {})
	e.Drain()
}

// TestShardedCounters: windows, exchanged messages and processed events
// are all observable and non-zero for a workload with cross-shard traffic.
func TestShardedCounters(t *testing.T) {
	e, logs := buildPingPong(3, 2, Microsecond, 17)
	e.Drain()
	if e.Windows() == 0 {
		t.Error("Windows() == 0 after a drained run")
	}
	if e.Exchanged() == 0 {
		t.Error("Exchanged() == 0 — ping-pong workload sent no cross-shard messages")
	}
	var logged uint64
	for _, l := range logs {
		logged += uint64(len(*l))
	}
	if e.Processed() < logged {
		t.Errorf("Processed() = %d < %d logged executions", e.Processed(), logged)
	}
}

// TestShardedEmptyDrain: draining an engine with no events is a no-op at
// time zero.
func TestShardedEmptyDrain(t *testing.T) {
	e := NewSharded(3, Microsecond, 4)
	if last := e.Drain(); last != 0 {
		t.Errorf("empty Drain returned %v, want 0", last)
	}
	if e.Windows() != 0 || e.Exchanged() != 0 || e.Processed() != 0 {
		t.Errorf("empty Drain touched counters: windows=%d exchanged=%d processed=%d",
			e.Windows(), e.Exchanged(), e.Processed())
	}
}

// TestShardedSameInstantCrossShardOrder: same-instant deliveries into one
// destination must execute in (source shard, send sequence) order
// regardless of worker count — the barrier injection's total order.
func TestShardedSameInstantCrossShardOrder(t *testing.T) {
	la := Microsecond
	var want []string
	for _, workers := range []int{1, 4} {
		e := NewSharded(4, la, workers)
		dst := e.Shard(0)
		var got []string
		for i := 1; i < 4; i++ {
			sh := e.Shard(i)
			for j := 0; j < 3; j++ {
				src, n := i, j
				// All land on dst at exactly la.
				sh.Sim().At(0, func() {
					sh.Defer(dst, la, func() { got = append(got, fmt.Sprintf("s%d#%d", src, n)) })
				})
			}
		}
		e.Drain()
		if len(got) != 9 {
			t.Fatalf("workers=%d: delivered %d messages, want 9", workers, len(got))
		}
		if want == nil {
			want = got
			continue
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("workers=%d: same-instant delivery order %v != %v", workers, got, want)
		}
	}
}
