// Sharded conservative-lookahead parallel simulation.
//
// A ShardedEngine partitions a simulation into shards, each owning a
// private Simulator (its own event heap, clock and free list). Shards only
// interact through Defer — a cross-shard message with a delivery delay of
// at least the engine's lookahead. That bound makes the classic
// conservative synchronization sound: the engine repeatedly finds the
// earliest pending instant across all shards, lets every shard execute
// its events inside the window [next, next+lookahead) — in parallel, no
// locks — and then exchanges the buffered cross-shard messages at the
// barrier. A message sent inside a window can, by the lookahead bound,
// only be delivered at or after the window's end, so no shard ever
// receives an event in its past.
//
// Determinism is independent of the worker count: shards share no mutable
// state during a window, and barrier injection orders messages by the
// total key (deliverAt, source shard, per-source send sequence) before
// handing them to the destination heaps, so every run of the same
// configuration executes the exact same event sequence per shard — with
// 1 shard the engine degenerates to the sequential Simulator semantics.
package sim

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// Shard is one partition of a sharded simulation: a private Simulator plus
// the outbox of cross-shard messages produced in the current window.
type Shard struct {
	id  int
	sim *Simulator
	eng *ShardedEngine

	// outbox buffers cross-shard sends until the window barrier; sendSeq
	// totally orders this shard's sends for deterministic injection.
	outbox  []xmsg
	sendSeq uint64
}

// xmsg is one buffered cross-shard message.
type xmsg struct {
	at       Time
	dst, src int
	seq      uint64
	fn       func()
}

// ID returns the shard's index within its engine.
func (sh *Shard) ID() int { return sh.id }

// Sim returns the shard's private simulator. All components owned by the
// shard schedule on it; it must only be driven through the engine.
func (sh *Shard) Sim() *Simulator { return sh.sim }

// Defer schedules fn after delay d on the destination shard. Same-shard
// calls are ordinary local scheduling; cross-shard calls are buffered and
// injected at the next window barrier, and d must be at least the
// engine's lookahead (the conservative bound — violating it would deliver
// into the destination's past).
func (sh *Shard) Defer(dst *Shard, d Time, fn func()) {
	if dst == sh {
		sh.sim.Schedule(d, fn)
		return
	}
	if d < sh.eng.lookahead {
		panic(fmt.Sprintf("sim: cross-shard delay %v under lookahead %v", d, sh.eng.lookahead))
	}
	sh.outbox = append(sh.outbox, xmsg{at: sh.sim.now + d, dst: dst.id, src: sh.id, seq: sh.sendSeq, fn: fn})
	sh.sendSeq++
}

// DeliverTo returns a delivery function bound to the destination shard:
// fn(d, f) schedules f after d onto dst. Link wiring uses it so a frame's
// propagation lands on the receiving device's shard.
func (sh *Shard) DeliverTo(dst *Shard) func(d Time, fn func()) {
	if dst == sh {
		return func(d Time, fn func()) { sh.sim.Schedule(d, fn) }
	}
	return func(d Time, fn func()) { sh.Defer(dst, d, fn) }
}

// ShardedEngine synchronizes a set of shards with conservative lookahead
// windows. Construct with NewSharded, wire components onto the shard
// simulators, then drive with Run/Drain. The engine itself must be driven
// from a single goroutine.
type ShardedEngine struct {
	shards    []*Shard
	lookahead Time
	workers   int

	// inbox and active are reused scratch for the barrier exchange and
	// window worker dispatch.
	inbox  []xmsg
	active []*Shard

	windows   uint64 // synchronization windows executed
	exchanged uint64 // cross-shard messages delivered
}

// NewSharded creates an engine with n shards. lookahead is the minimum
// cross-shard delay (for a network partitioned at switch boundaries: the
// smallest propagation delay of any link whose endpoints live on
// different shards). workers bounds how many shards execute concurrently
// per window; 1 runs every shard inline on the driving goroutine with no
// goroutines at all.
func NewSharded(n int, lookahead Time, workers int) *ShardedEngine {
	if n <= 0 {
		panic("sim: sharded engine needs at least one shard")
	}
	if lookahead <= 0 {
		panic("sim: lookahead must be positive")
	}
	if workers <= 0 {
		workers = 1
	}
	e := &ShardedEngine{lookahead: lookahead, workers: workers}
	for i := 0; i < n; i++ {
		e.shards = append(e.shards, &Shard{id: i, sim: New(), eng: e})
	}
	return e
}

// NumShards returns the shard count.
func (e *ShardedEngine) NumShards() int { return len(e.shards) }

// Shard returns shard i.
func (e *ShardedEngine) Shard(i int) *Shard { return e.shards[i] }

// Lookahead returns the conservative synchronization bound.
func (e *ShardedEngine) Lookahead() Time { return e.lookahead }

// SetWorkers changes the per-window concurrency. Safe between Run calls.
func (e *ShardedEngine) SetWorkers(n int) {
	if n <= 0 {
		n = 1
	}
	e.workers = n
}

// Windows returns how many synchronization windows have executed.
func (e *ShardedEngine) Windows() uint64 { return e.windows }

// Exchanged returns how many cross-shard messages have been delivered.
func (e *ShardedEngine) Exchanged() uint64 { return e.exchanged }

// Processed sums executed events across shards.
func (e *ShardedEngine) Processed() uint64 {
	var n uint64
	for _, sh := range e.shards {
		n += sh.sim.Processed()
	}
	return n
}

// nextAt returns the earliest pending instant across all shards.
func (e *ShardedEngine) nextAt() Time {
	next := MaxTime
	for _, sh := range e.shards {
		if t := sh.sim.NextAt(); t < next {
			next = t
		}
	}
	return next
}

// Run executes windows until every event at or before the until instant
// has run (events exactly at until execute, matching Simulator.Run), then
// advances every shard clock to until. It returns until.
func (e *ShardedEngine) Run(until Time) Time {
	for {
		next := e.nextAt()
		if next > until {
			break
		}
		end := next + e.lookahead
		if end < next {
			end = MaxTime // overflow clamp
		}
		if until != MaxTime && end > until+1 {
			// Shrinking the window is always safe; this one stops exactly
			// after the events at until.
			end = until + 1
		}
		e.runWindow(end)
		e.exchange()
	}
	if until != MaxTime {
		for _, sh := range e.shards {
			sh.sim.Run(until) // nothing left to execute; advances the clock
		}
	}
	return until
}

// Drain executes windows until no shard has pending events, then advances
// every shard clock to the globally latest executed instant — the sharded
// equivalent of Simulator.RunAll, which leaves the clock at the last
// event. It returns that instant.
func (e *ShardedEngine) Drain() Time {
	for {
		next := e.nextAt()
		if next == MaxTime {
			break
		}
		end := next + e.lookahead
		if end < next {
			end = MaxTime
		}
		e.runWindow(end)
		e.exchange()
	}
	var last Time
	for _, sh := range e.shards {
		if sh.sim.Now() > last {
			last = sh.sim.Now()
		}
	}
	for _, sh := range e.shards {
		sh.sim.Run(last)
	}
	return last
}

// runWindow executes every shard's events strictly before end. Shards are
// independent inside a window, so they run concurrently up to the worker
// bound; with one worker (or one active shard) everything runs inline.
func (e *ShardedEngine) runWindow(end Time) {
	e.windows++
	active := e.active[:0]
	for _, sh := range e.shards {
		if sh.sim.NextAt() < end {
			active = append(active, sh)
		}
	}
	e.active = active
	w := e.workers
	if w > len(active) {
		w = len(active)
	}
	if w <= 1 {
		for _, sh := range active {
			sh.sim.RunBefore(end)
		}
		return
	}
	var next int64 = -1
	var wg sync.WaitGroup
	wg.Add(w)
	for i := 0; i < w; i++ {
		go func() {
			defer wg.Done()
			for {
				j := int(atomic.AddInt64(&next, 1))
				if j >= len(active) {
					return
				}
				active[j].sim.RunBefore(end)
			}
		}()
	}
	wg.Wait()
}

// exchange moves every buffered cross-shard message into its destination
// heap. Messages are sorted by (deliverAt, source shard, source sequence)
// first: the injection order fixes the destination's tie-break sequence
// for same-instant deliveries, making it identical across worker counts
// and shard layouts.
func (e *ShardedEngine) exchange() {
	msgs := e.inbox[:0]
	for _, sh := range e.shards {
		msgs = append(msgs, sh.outbox...)
		sh.outbox = sh.outbox[:0]
	}
	if len(msgs) == 0 {
		e.inbox = msgs
		return
	}
	sort.Slice(msgs, func(i, j int) bool {
		a, b := &msgs[i], &msgs[j]
		if a.at != b.at {
			return a.at < b.at
		}
		if a.src != b.src {
			return a.src < b.src
		}
		return a.seq < b.seq
	})
	for i := range msgs {
		m := &msgs[i]
		e.shards[m.dst].sim.At(m.at, m.fn)
		m.fn = nil
	}
	e.exchanged += uint64(len(msgs))
	e.inbox = msgs
}
