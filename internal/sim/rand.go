package sim

// Deterministic pseudo-random streams for simulation components.
//
// Every component that needs randomness (workload generators, loss
// processes, ECMP perturbation …) derives its own named Stream from the
// run's root seed, so adding a new consumer never perturbs the draws seen
// by existing ones — a property plain math/rand sharing does not give us.

import (
	"encoding/binary"
	"hash/fnv"
	"math"
)

// Stream is a small, fast, deterministic PRNG (xoshiro256**). It is not
// cryptographically secure; it exists to make simulations reproducible.
type Stream struct {
	s [4]uint64
}

// NewStream derives an independent random stream from a root seed and a
// component name. Identical (seed, name) pairs always yield identical
// sequences.
func NewStream(seed uint64, name string) *Stream {
	h := fnv.New64a()
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], seed)
	h.Write(b[:])
	h.Write([]byte(name))
	st := &Stream{}
	// SplitMix64 expansion of the combined seed into full state.
	x := h.Sum64()
	for i := range st.s {
		x += 0x9e3779b97f4a7c15
		z := x
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		st.s[i] = z ^ (z >> 31)
	}
	return st
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 pseudo-random bits.
func (r *Stream) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Float64 returns a uniform draw in [0, 1).
func (r *Stream) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform draw in [0, n). It panics if n <= 0.
func (r *Stream) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Uint32 returns the next 32 pseudo-random bits.
func (r *Stream) Uint32() uint32 { return uint32(r.Uint64() >> 32) }

// Exp returns an exponentially distributed draw with the given mean.
func (r *Stream) Exp(mean float64) float64 {
	u := r.Float64()
	// Guard against log(0).
	if u >= 1 {
		u = math.Nextafter(1, 0)
	}
	return -mean * math.Log(1-u)
}

// Bool returns true with probability p.
func (r *Stream) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *Stream) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}
