// Package sim provides a deterministic discrete-event simulation engine.
//
// All of the network substrate in this repository (switches, links, hosts,
// NICs) runs on top of a single Simulator: components schedule closures at
// virtual-time instants and the engine executes them in (time, sequence)
// order, so a run with a fixed seed is exactly reproducible.
//
// Time is modeled as integer nanoseconds (Time). The engine never consults
// the wall clock.
package sim

import (
	"fmt"
	"math"
)

// Time is a virtual-time instant in nanoseconds since the start of the
// simulation.
type Time int64

// Common durations, expressed in simulation Time units.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// MaxTime is the largest representable instant; Run(MaxTime) drains the
// event queue completely.
const MaxTime Time = math.MaxInt64

// Seconds reports t as a floating-point number of seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// String renders the instant with automatic unit selection.
func (t Time) String() string {
	switch {
	case t >= Second:
		return fmt.Sprintf("%.6fs", t.Seconds())
	case t >= Millisecond:
		return fmt.Sprintf("%.3fms", float64(t)/float64(Millisecond))
	case t >= Microsecond:
		return fmt.Sprintf("%.3fus", float64(t)/float64(Microsecond))
	default:
		return fmt.Sprintf("%dns", int64(t))
	}
}

// event is a scheduled closure. Executed and canceled events return to a
// free list and are reused by later Schedule/At calls, so steady-state
// scheduling does not allocate; gen distinguishes a recycled event from
// the one a stale Handle still points at.
type event struct {
	at    Time
	seq   uint64 // tie-breaker: FIFO among events at the same instant
	fn    func()
	index int    // heap index; -1 once popped or canceled
	gen   uint32 // incremented on every release to the free list
}

// eventQueue is a min-heap ordered by (at, seq). The sift operations are
// hand-rolled rather than going through container/heap: the interface
// methods cost a dynamic dispatch per comparison and a Swap call per
// level, which shows up directly in hotpath/sim_schedule. Inlining the
// compare and moving elements hole-style (shift, then place once) runs
// the same algorithm in roughly half the time.
type eventQueue []*event

// less orders events by (at, seq); seq breaks ties FIFO.
func (q eventQueue) less(a, b *event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// push appends ev and restores the heap by sifting it up. The moved
// elements shift down one slot each; ev is written exactly once.
func (q *eventQueue) push(ev *event) {
	h := *q
	i := len(h)
	h = append(h, nil)
	for i > 0 {
		parent := (i - 1) / 2
		p := h[parent]
		if !q.less(ev, p) {
			break
		}
		h[i] = p
		p.index = i
		i = parent
	}
	h[i] = ev
	ev.index = i
	*q = h
}

// popMin removes and returns the earliest event.
func (q *eventQueue) popMin() *event {
	h := *q
	top := h[0]
	top.index = -1
	n := len(h) - 1
	last := h[n]
	h[n] = nil
	h = h[:n]
	*q = h
	if n > 0 {
		q.siftDown(last, 0)
	}
	return top
}

// remove deletes the event at heap index i (Cancel path).
func (q *eventQueue) remove(i int) {
	h := *q
	h[i].index = -1
	n := len(h) - 1
	last := h[n]
	h[n] = nil
	h = h[:n]
	*q = h
	if i == n {
		return
	}
	// last replaces the hole at i; restore heap order in whichever
	// direction it violates it.
	if i > 0 {
		parent := (i - 1) / 2
		if q.less(last, h[parent]) {
			q.siftUp(last, i)
			return
		}
	}
	q.siftDown(last, i)
}

// siftUp places ev, currently homeless, at or above hole index i.
func (q *eventQueue) siftUp(ev *event, i int) {
	h := *q
	for i > 0 {
		parent := (i - 1) / 2
		p := h[parent]
		if !q.less(ev, p) {
			break
		}
		h[i] = p
		p.index = i
		i = parent
	}
	h[i] = ev
	ev.index = i
}

// siftDown places ev, currently homeless, at or below hole index i.
func (q *eventQueue) siftDown(ev *event, i int) {
	h := *q
	n := len(h)
	for {
		child := 2*i + 1
		if child >= n {
			break
		}
		if r := child + 1; r < n && q.less(h[r], h[child]) {
			child = r
		}
		c := h[child]
		if !q.less(c, ev) {
			break
		}
		h[i] = c
		c.index = i
		i = child
	}
	h[i] = ev
	ev.index = i
}

// Simulator is a single-threaded discrete-event scheduler. It is not safe
// for concurrent use: all scheduled closures run on the goroutine that calls
// Run or Step.
type Simulator struct {
	now     Time
	seq     uint64
	queue   eventQueue
	free    []*event // recycled events (zero-alloc steady-state scheduling)
	stopped bool
	// processed counts executed events, mostly for tests and reporting.
	processed uint64
}

// New returns an empty simulator positioned at time zero.
func New() *Simulator {
	return &Simulator{}
}

// Now returns the current virtual time.
func (s *Simulator) Now() Time { return s.now }

// Processed returns the number of events executed so far.
func (s *Simulator) Processed() uint64 { return s.processed }

// Pending returns the number of events still scheduled.
func (s *Simulator) Pending() int { return len(s.queue) }

// NextAt returns the instant of the earliest pending event, or MaxTime if
// the queue is empty. The sharded engine uses it to find the next global
// synchronization window without popping anything.
func (s *Simulator) NextAt() Time {
	if len(s.queue) == 0 {
		return MaxTime
	}
	return s.queue[0].at
}

// Handle identifies a scheduled event so it can be canceled. The zero Handle
// is invalid.
type Handle struct {
	ev  *event
	gen uint32
}

// Schedule runs fn after delay d (which must be >= 0) relative to Now.
func (s *Simulator) Schedule(d Time, fn func()) Handle {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %d", d))
	}
	return s.At(s.now+d, fn)
}

// At runs fn at the absolute instant t, which must not be in the past.
func (s *Simulator) At(t Time, fn func()) Handle {
	if t < s.now {
		panic(fmt.Sprintf("sim: scheduling in the past: %v < %v", t, s.now))
	}
	var ev *event
	if n := len(s.free); n > 0 {
		ev = s.free[n-1]
		s.free[n-1] = nil
		s.free = s.free[:n-1]
		ev.at, ev.seq, ev.fn = t, s.seq, fn
	} else {
		ev = &event{at: t, seq: s.seq, fn: fn}
	}
	s.seq++
	s.queue.push(ev)
	return Handle{ev: ev, gen: ev.gen}
}

// release returns a popped or canceled event to the free list, dropping its
// closure reference and invalidating outstanding Handles.
func (s *Simulator) release(ev *event) {
	ev.fn = nil
	ev.index = -1
	ev.gen++
	s.free = append(s.free, ev)
}

// Cancel removes a scheduled event. It reports whether the event was still
// pending (false if it already ran, was canceled, or the handle is zero).
func (s *Simulator) Cancel(h Handle) bool {
	if h.ev == nil || h.ev.gen != h.gen || h.ev.index < 0 {
		return false
	}
	s.queue.remove(h.ev.index)
	s.release(h.ev)
	return true
}

// Stop makes Run return after the currently executing event completes.
func (s *Simulator) Stop() { s.stopped = true }

// Step executes the single earliest pending event and reports whether one
// was executed.
func (s *Simulator) Step() bool {
	if len(s.queue) == 0 {
		return false
	}
	ev := s.queue.popMin()
	s.now = ev.at
	s.processed++
	fn := ev.fn
	// Release before running so fn's own Schedule calls can reuse the slot.
	s.release(ev)
	fn()
	return true
}

// Run executes events in order until the queue is empty, the next event lies
// beyond the until instant, or Stop is called. It returns the virtual time at
// which execution stopped. Events exactly at until are executed.
func (s *Simulator) Run(until Time) Time {
	s.stopped = false
	for !s.stopped && len(s.queue) > 0 {
		if s.queue[0].at > until {
			break
		}
		s.Step()
	}
	// Advance the clock to the horizon (never backward).
	if !s.stopped && s.now < until && until != MaxTime {
		s.now = until
	}
	return s.now
}

// RunBefore executes events strictly earlier than horizon, leaving the
// clock at the last executed event (it never advances the clock to the
// horizon — the caller owns the window semantics). The sharded engine runs
// each shard through its synchronization window with it.
func (s *Simulator) RunBefore(horizon Time) {
	s.stopped = false
	for !s.stopped && len(s.queue) > 0 && s.queue[0].at < horizon {
		s.Step()
	}
}

// RunAll drains every pending event regardless of time. Unlike Run with a
// finite horizon, it leaves the clock at the instant of the last executed
// event.
func (s *Simulator) RunAll() Time {
	s.stopped = false
	for !s.stopped && s.Step() {
	}
	return s.now
}

// Every schedules fn to run now+d, then every d thereafter, until the
// returned Ticker is stopped or the simulation ends.
func (s *Simulator) Every(d Time, fn func()) *Ticker {
	if d <= 0 {
		panic("sim: non-positive tick interval")
	}
	t := &Ticker{sim: s, interval: d, fn: fn}
	// One closure for the ticker's lifetime: re-arming must not allocate.
	t.tick = func() {
		if t.stopped {
			return
		}
		t.fn()
		if !t.stopped {
			t.arm()
		}
	}
	t.arm()
	return t
}

// Ticker repeatedly schedules a closure at a fixed interval.
type Ticker struct {
	sim      *Simulator
	interval Time
	fn       func()
	tick     func() // pre-bound wrapper scheduled every interval
	handle   Handle
	stopped  bool
}

func (t *Ticker) arm() {
	t.handle = t.sim.Schedule(t.interval, t.tick)
}

// Stop cancels all future ticks.
func (t *Ticker) Stop() {
	if t.stopped {
		return
	}
	t.stopped = true
	t.sim.Cancel(t.handle)
}
