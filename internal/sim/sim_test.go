package sim

import (
	"testing"
	"testing/quick"
)

func TestScheduleOrdering(t *testing.T) {
	s := New()
	var got []int
	s.Schedule(30, func() { got = append(got, 3) })
	s.Schedule(10, func() { got = append(got, 1) })
	s.Schedule(20, func() { got = append(got, 2) })
	s.RunAll()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("execution order = %v, want %v", got, want)
		}
	}
	if s.Now() != 30 {
		t.Errorf("Now() = %v, want 30", s.Now())
	}
}

func TestFIFOAtSameInstant(t *testing.T) {
	s := New()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		s.Schedule(5, func() { got = append(got, i) })
	}
	s.RunAll()
	for i := range got {
		if got[i] != i {
			t.Fatalf("same-instant events out of FIFO order: %v", got)
		}
	}
}

func TestNestedScheduling(t *testing.T) {
	s := New()
	var times []Time
	s.Schedule(10, func() {
		times = append(times, s.Now())
		s.Schedule(5, func() {
			times = append(times, s.Now())
		})
	})
	s.RunAll()
	if len(times) != 2 || times[0] != 10 || times[1] != 15 {
		t.Fatalf("nested times = %v, want [10 15]", times)
	}
}

func TestRunUntilHorizon(t *testing.T) {
	s := New()
	ran := 0
	s.Schedule(10, func() { ran++ })
	s.Schedule(100, func() { ran++ })
	end := s.Run(50)
	if ran != 1 {
		t.Errorf("ran %d events, want 1", ran)
	}
	if end != 50 || s.Now() != 50 {
		t.Errorf("Run returned %v, want 50", end)
	}
	// Event exactly at the horizon runs.
	s.Schedule(50, func() { ran++ }) // at absolute t=100... relative to now=50
	s.Run(100)
	if ran != 3 {
		t.Errorf("after second run, ran = %d, want 3", ran)
	}
}

func TestHorizonInclusive(t *testing.T) {
	s := New()
	ran := false
	s.At(100, func() { ran = true })
	s.Run(100)
	if !ran {
		t.Error("event exactly at horizon did not run")
	}
}

func TestCancel(t *testing.T) {
	s := New()
	ran := false
	h := s.Schedule(10, func() { ran = true })
	if !s.Cancel(h) {
		t.Fatal("Cancel returned false for pending event")
	}
	if s.Cancel(h) {
		t.Fatal("second Cancel returned true")
	}
	s.RunAll()
	if ran {
		t.Error("canceled event ran")
	}
}

func TestCancelZeroHandle(t *testing.T) {
	s := New()
	if s.Cancel(Handle{}) {
		t.Error("Cancel of zero handle returned true")
	}
}

func TestCancelOneOfMany(t *testing.T) {
	s := New()
	var got []int
	var hs []Handle
	for i := 0; i < 5; i++ {
		i := i
		hs = append(hs, s.Schedule(Time(i+1), func() { got = append(got, i) }))
	}
	s.Cancel(hs[2])
	s.RunAll()
	want := []int{0, 1, 3, 4}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestStop(t *testing.T) {
	s := New()
	ran := 0
	s.Schedule(1, func() { ran++; s.Stop() })
	s.Schedule(2, func() { ran++ })
	s.Run(100)
	if ran != 1 {
		t.Errorf("ran = %d events before Stop, want 1", ran)
	}
	// Run may be resumed.
	s.Run(100)
	if ran != 2 {
		t.Errorf("after resume ran = %d, want 2", ran)
	}
}

func TestTicker(t *testing.T) {
	s := New()
	count := 0
	var tk *Ticker
	tk = s.Every(10, func() {
		count++
		if count == 5 {
			tk.Stop()
		}
	})
	s.Run(1000)
	if count != 5 {
		t.Errorf("ticker fired %d times, want 5", count)
	}
	if s.Now() != 1000 {
		t.Errorf("Now() = %v, want 1000", s.Now())
	}
}

func TestTickerStopBeforeFire(t *testing.T) {
	s := New()
	fired := false
	tk := s.Every(10, func() { fired = true })
	tk.Stop()
	s.Run(100)
	if fired {
		t.Error("stopped ticker fired")
	}
}

func TestSchedulePastPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("At in the past did not panic")
		}
	}()
	s := New()
	s.Schedule(10, func() {
		s.At(5, func() {})
	})
	s.RunAll()
}

func TestNegativeDelayPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("negative delay did not panic")
		}
	}()
	New().Schedule(-1, func() {})
}

func TestProcessedCount(t *testing.T) {
	s := New()
	for i := 0; i < 7; i++ {
		s.Schedule(Time(i), func() {})
	}
	s.RunAll()
	if s.Processed() != 7 {
		t.Errorf("Processed() = %d, want 7", s.Processed())
	}
}

func TestTimeString(t *testing.T) {
	cases := []struct {
		t    Time
		want string
	}{
		{500, "500ns"},
		{2 * Microsecond, "2.000us"},
		{3 * Millisecond, "3.000ms"},
		{Second, "1.000000s"},
	}
	for _, c := range cases {
		if got := c.t.String(); got != c.want {
			t.Errorf("(%d).String() = %q, want %q", int64(c.t), got, c.want)
		}
	}
}

func TestStreamDeterminism(t *testing.T) {
	a := NewStream(42, "link")
	b := NewStream(42, "link")
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("identical streams diverged")
		}
	}
}

func TestStreamIndependence(t *testing.T) {
	a := NewStream(42, "link")
	b := NewStream(42, "host")
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("streams with different names produced %d/100 identical draws", same)
	}
}

func TestStreamFloat64Range(t *testing.T) {
	r := NewStream(1, "f")
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestStreamIntnRange(t *testing.T) {
	if err := quick.Check(func(seed uint64, n uint8) bool {
		m := int(n%100) + 1
		r := NewStream(seed, "intn")
		v := r.Intn(m)
		return v >= 0 && v < m
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestStreamExpPositiveMean(t *testing.T) {
	r := NewStream(7, "exp")
	var sum float64
	const n = 200000
	for i := 0; i < n; i++ {
		v := r.Exp(5.0)
		if v < 0 {
			t.Fatalf("Exp returned negative value %v", v)
		}
		sum += v
	}
	mean := sum / n
	if mean < 4.8 || mean > 5.2 {
		t.Errorf("Exp empirical mean = %v, want ~5.0", mean)
	}
}

func TestStreamBoolProbability(t *testing.T) {
	r := NewStream(3, "bool")
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if r.Bool(0.25) {
			hits++
		}
	}
	frac := float64(hits) / n
	if frac < 0.23 || frac > 0.27 {
		t.Errorf("Bool(0.25) hit rate = %v", frac)
	}
	if r.Bool(0) {
		t.Error("Bool(0) returned true")
	}
	if !r.Bool(1) {
		t.Error("Bool(1) returned false")
	}
}

func TestStreamPerm(t *testing.T) {
	r := NewStream(9, "perm")
	p := r.Perm(50)
	seen := make(map[int]bool)
	for _, v := range p {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("invalid permutation: %v", p)
		}
		seen[v] = true
	}
	if len(seen) != 50 {
		t.Fatalf("permutation missing elements: %v", p)
	}
}

func BenchmarkScheduleRun(b *testing.B) {
	s := New()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Schedule(Time(i%1000), func() {})
		if s.Pending() > 1024 {
			s.RunAll()
		}
	}
	s.RunAll()
}

func BenchmarkStreamUint64(b *testing.B) {
	r := NewStream(1, "bench")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}

// TestScheduleStepZeroAllocSteadyState pins the scheduler's event cycle at
// zero allocations once the free list is warm: every simulated packet
// costs at least one Schedule+Step, so this is the floor under the whole
// hot path.
func TestScheduleStepZeroAllocSteadyState(t *testing.T) {
	s := New()
	fn := func() {}
	s.Schedule(0, fn) // prime the free list
	s.Step()
	if n := testing.AllocsPerRun(1000, func() {
		s.Schedule(1, fn)
		s.Step()
	}); n != 0 {
		t.Errorf("Schedule+Step allocates %v times per event; budget is 0", n)
	}
}

// TestCancelReusedSlotIsNoop: a Handle from a released event must not
// cancel the event that later reuses its slot (the free-list generation
// guard).
func TestCancelReusedSlotIsNoop(t *testing.T) {
	s := New()
	ran := false
	h := s.Schedule(1, func() {})
	s.Step() // runs and releases the event; h is now stale
	s.Schedule(1, func() { ran = true })
	if s.Cancel(h) { // must not touch the reused slot
		t.Fatal("Cancel reported success on a stale handle")
	}
	s.RunAll()
	if !ran {
		t.Fatal("stale Handle canceled a reused event slot")
	}
}
