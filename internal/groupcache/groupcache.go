// Package groupcache implements NetSeer's event-packet deduplication
// (Algorithm 1, §3.4): a direct-indexed exact-match hash table that
// aggregates consecutive event packets of the same flow event into a single
// flow event with a packet counter.
//
// Properties the paper requires, preserved here and verified by tests:
//
//   - Zero false negatives: the first packet of every flow event is always
//     reported (either it installs into an empty/evicted slot — reported —
//     or it matches the resident entry, whose own first packet was
//     reported).
//   - Minimal false positives: a collision evicts the resident entry; if
//     the evicted event is still live, its next packet re-installs and
//     re-reports, creating a duplicate initial report (a data false
//     positive) that the switch CPU removes later (§3.6).
//   - Periodic refresh: an aggregated event is re-reported every C packets
//     so long-running events remain visible and counters reach the backend.
package groupcache

import (
	"netseer/internal/fevent"
)

// DefaultSlots is the default table size per event type; the paper sizes
// these to the SRAM available per stage.
const DefaultSlots = 4096

// DefaultC is the default counter-report interval (the constant C of
// Algorithm 1).
const DefaultC = 128

// ReportFunc receives every produced flow event. The *fevent.Event is only
// valid for the duration of the call; implementations must copy it if they
// retain it.
type ReportFunc func(e *fevent.Event)

// Table is a group-caching table for one event type. It is not safe for
// concurrent use; in the simulated switch every table belongs to a single
// pipeline.
type Table struct {
	slots []entry
	// mask is len(slots)-1 when the size is a power of two (the common
	// case: DefaultSlots and the paper's SRAM sizings), letting Offer
	// replace the 32-bit modulo with an AND; -1 otherwise.
	mask   int
	c      uint16
	report ReportFunc
	// scratch is the reusable out-parameter for emit: report receives a
	// pointer into it (valid only for the call, per the ReportFunc
	// contract), so emitting never heap-allocates.
	scratch fevent.Event

	// Stats. Plain counters: the table is single-owner (one pipeline) and
	// Offer's ~16 ns budget leaves no room for atomic adds; scrapes read
	// owner-published mirrors instead (see internal/obs).
	ingested  uint64 // event packets offered
	reported  uint64 // flow events emitted
	merged    uint64 // packets absorbed into an existing entry
	evictions uint64 // collisions that replaced a live entry
	rereports uint64 // periodic C-crossing re-reports of aggregated events
}

type entry struct {
	used    bool
	key     fevent.Key
	ev      fevent.Event // representative event (detail fields from installer)
	counter uint16
	target  uint16
}

// New creates a table with the given number of slots and counter interval
// C, delivering produced flow events to report. Panics if slots <= 0,
// c == 0 or report is nil, since a silently dropped event would violate
// the zero-false-negative contract.
func New(slots int, c uint16, report ReportFunc) *Table {
	if slots <= 0 {
		panic("groupcache: slots must be positive")
	}
	if c == 0 {
		panic("groupcache: C must be positive")
	}
	if report == nil {
		panic("groupcache: report must not be nil")
	}
	mask := -1
	if slots&(slots-1) == 0 {
		mask = slots - 1
	}
	return &Table{slots: make([]entry, slots), mask: mask, c: c, report: report}
}

// Offer processes one event packet (Algorithm 1). ev's Count field is
// ignored on input; produced events carry the aggregated count.
func (t *Table) Offer(ev *fevent.Event) {
	t.ingested++
	key := ev.Key()
	var idx int
	if t.mask >= 0 {
		idx = int(ev.Hash) & t.mask
	} else {
		idx = int(ev.Hash % uint32(len(t.slots)))
	}
	s := &t.slots[idx]
	if s.used && s.key == key {
		// Same flow event: aggregate (lines 3–7).
		s.counter++
		s.ev.QueueLatencyUs = maxU16(s.ev.QueueLatencyUs, ev.QueueLatencyUs)
		t.merged++
		if s.counter >= s.target {
			t.rereports++
			t.emit(s)
			s.target += t.c
		}
		return
	}
	// Different flow event: install and report (lines 8–12).
	if s.used {
		t.evictions++
		// Report the evicted event so its final count is not lost.
		t.emit(s)
	}
	s.used = true
	s.key = key
	s.ev = *ev
	s.counter = 1
	s.target = t.c
	t.emit(s)
}

// OfferBurst processes a burst of event packets in arrival order. The
// outcome is identical to calling Offer per event; running the burst
// through the table in one call keeps the slot array hot in cache and
// amortizes the call overhead — the stage-at-a-time shape of the
// simulated match-action stage.
func (t *Table) OfferBurst(evs []fevent.Event) {
	for i := range evs {
		t.Offer(&evs[i])
	}
}

func (t *Table) emit(s *entry) {
	t.scratch = s.ev
	t.scratch.Count = s.counter
	t.reported++
	t.report(&t.scratch)
}

// Flush reports and clears every resident entry, delivering final counters.
// The simulated switch calls this at the end of a run (the hardware
// equivalent is the periodic refresh by C crossing).
func (t *Table) Flush() {
	for i := range t.slots {
		s := &t.slots[i]
		if s.used {
			t.emit(s)
			s.used = false
		}
	}
}

// Stats reports the table's counters: offered packets, emitted flow
// events, merged (suppressed) packets, and eviction count.
func (t *Table) Stats() (ingested, reported, merged, evictions uint64) {
	return t.ingested, t.reported, t.merged, t.evictions
}

// Rereports returns how many emitted events were periodic C-crossing
// refreshes of a resident aggregate (as opposed to installs/evictions) —
// the "long-running events stay visible" side of Algorithm 1.
func (t *Table) Rereports() uint64 { return t.rereports }

// Len returns the number of live entries.
func (t *Table) Len() int {
	n := 0
	for i := range t.slots {
		if t.slots[i].used {
			n++
		}
	}
	return n
}

// Slots returns the table capacity.
func (t *Table) Slots() int { return len(t.slots) }

func maxU16(a, b uint16) uint16 {
	if a > b {
		return a
	}
	return b
}
