package groupcache

import (
	"testing"

	"netseer/internal/fevent"
	"netseer/internal/pkt"
	"netseer/internal/sim"
)

func flowN(n uint32) pkt.FlowKey {
	return pkt.FlowKey{
		SrcIP: pkt.IP(10, 0, 0, 1) + n, DstIP: pkt.IP(10, 1, 0, 1),
		SrcPort: uint16(1000 + n%50000), DstPort: 80, Proto: pkt.ProtoTCP,
	}
}

func congestionPacket(f pkt.FlowKey, lat uint16) *fevent.Event {
	return &fevent.Event{
		Type: fevent.TypeCongestion, Flow: f, EgressPort: 1, Queue: 0,
		QueueLatencyUs: lat, Hash: f.Hash(),
	}
}

func dropPacket(f pkt.FlowKey, code fevent.DropCode) *fevent.Event {
	return &fevent.Event{Type: fevent.TypeDrop, Flow: f, DropCode: code, Hash: f.Hash()}
}

type capture struct{ events []fevent.Event }

func (c *capture) report(e *fevent.Event) { c.events = append(c.events, *e) }

func TestFirstPacketAlwaysReported(t *testing.T) {
	var c capture
	tbl := New(16, 100, c.report)
	f := flowN(0)
	tbl.Offer(congestionPacket(f, 10))
	if len(c.events) != 1 {
		t.Fatalf("first packet produced %d reports, want 1", len(c.events))
	}
	if c.events[0].Flow != f || c.events[0].Count != 1 {
		t.Errorf("report = %+v", c.events[0])
	}
}

func TestConsecutivePacketsAggregated(t *testing.T) {
	var c capture
	tbl := New(16, 1000, c.report)
	f := flowN(0)
	for i := 0; i < 500; i++ {
		tbl.Offer(congestionPacket(f, uint16(i)))
	}
	// Only the initial report: 500 < C.
	if len(c.events) != 1 {
		t.Fatalf("got %d reports, want 1", len(c.events))
	}
	tbl.Flush()
	if len(c.events) != 2 {
		t.Fatalf("after flush got %d reports, want 2", len(c.events))
	}
	final := c.events[1]
	if final.Count != 500 {
		t.Errorf("final count = %d, want 500", final.Count)
	}
	if final.QueueLatencyUs != 499 {
		t.Errorf("final latency = %d, want max 499", final.QueueLatencyUs)
	}
}

func TestCounterThresholdReports(t *testing.T) {
	var c capture
	tbl := New(16, 10, c.report)
	f := flowN(0)
	for i := 0; i < 35; i++ {
		tbl.Offer(congestionPacket(f, 1))
	}
	// Reports at packet 1 (install), 10, 20, 30 (each C crossing).
	if len(c.events) != 4 {
		t.Fatalf("got %d reports, want 4: %+v", len(c.events), c.events)
	}
	wantCounts := []uint16{1, 10, 20, 30}
	for i, w := range wantCounts {
		if c.events[i].Count != w {
			t.Errorf("report %d count = %d, want %d", i, c.events[i].Count, w)
		}
	}
}

func TestCollisionEvictsAndReportsBoth(t *testing.T) {
	var c capture
	tbl := New(1, 1000, c.report) // 1 slot: everything collides
	a, b := flowN(1), flowN(2)
	tbl.Offer(congestionPacket(a, 1)) // install a → report
	tbl.Offer(congestionPacket(a, 1)) // merge
	tbl.Offer(congestionPacket(b, 1)) // evict a (report final), install b (report)
	if len(c.events) != 3 {
		t.Fatalf("got %d reports, want 3: %+v", len(c.events), c.events)
	}
	if c.events[1].Flow != a || c.events[1].Count != 2 {
		t.Errorf("eviction report = %+v, want flow a count 2", c.events[1])
	}
	if c.events[2].Flow != b || c.events[2].Count != 1 {
		t.Errorf("install report = %+v, want flow b count 1", c.events[2])
	}
}

// TestZeroFalseNegativesProperty is the paper's central dedup claim: under
// arbitrary interleavings and collisions, every distinct flow event is
// reported at least once.
func TestZeroFalseNegativesProperty(t *testing.T) {
	for _, slots := range []int{1, 2, 7, 64} {
		var c capture
		tbl := New(slots, 13, c.report)
		rng := sim.NewStream(99, "fn-property")
		want := make(map[fevent.Key]bool)
		for i := 0; i < 20000; i++ {
			f := flowN(uint32(rng.Intn(200)))
			var ev *fevent.Event
			if rng.Bool(0.5) {
				ev = congestionPacket(f, uint16(rng.Intn(100)))
			} else {
				ev = dropPacket(f, fevent.DropMMUCongestion)
			}
			want[ev.Key()] = true
			tbl.Offer(ev)
		}
		got := make(map[fevent.Key]bool)
		for i := range c.events {
			got[c.events[i].Key()] = true
		}
		for k := range want {
			if !got[k] {
				t.Fatalf("slots=%d: flow event %+v never reported (false negative)", slots, k)
			}
		}
	}
}

// TestCountConservation: the sum of final per-event counts equals the number
// of offered packets (no packet is lost or double-counted), when every entry
// is flushed at the end.
func TestCountConservation(t *testing.T) {
	var c capture
	tbl := New(8, 5, c.report)
	rng := sim.NewStream(7, "conservation")
	const n = 5000
	for i := 0; i < n; i++ {
		tbl.Offer(congestionPacket(flowN(uint32(rng.Intn(40))), 1))
	}
	tbl.Flush()
	// Count the *final* report per episode: reports form a monotone series
	// per episode; an episode's last report carries its total. Reconstruct
	// by summing count deltas: every report's count minus the previous
	// report's count for the same episode... Simpler and robust: the
	// table's merged+reported-installs bookkeeping must add up.
	ingested, _, merged, _ := tbl.Stats()
	if ingested != n {
		t.Fatalf("ingested = %d, want %d", ingested, n)
	}
	// Every offered packet either merged into an entry or installed one.
	installs := ingested - merged
	if installs == 0 || merged == 0 {
		t.Fatalf("degenerate run: installs=%d merged=%d", installs, merged)
	}
}

func TestMergedReductionRatio(t *testing.T) {
	// With few flows and many packets the table should suppress ~95% of
	// event packets (the paper's headline dedup figure).
	var c capture
	tbl := New(1024, 1<<15, c.report)
	for f := 0; f < 10; f++ {
		for i := 0; i < 1000; i++ {
			tbl.Offer(congestionPacket(flowN(uint32(f)), 1))
		}
	}
	ingested, reported, _, _ := tbl.Stats()
	ratio := float64(reported) / float64(ingested)
	if ratio > 0.05 {
		t.Errorf("report ratio = %.4f, want <= 0.05", ratio)
	}
}

func TestDropAndCongestionDoNotCollideLogically(t *testing.T) {
	var c capture
	tbl := New(1024, 100, c.report)
	f := flowN(3)
	tbl.Offer(congestionPacket(f, 1))
	tbl.Offer(dropPacket(f, fevent.DropMMUCongestion))
	// Same flow, different event type → two distinct flow events.
	keys := make(map[fevent.Key]bool)
	for i := range c.events {
		keys[c.events[i].Key()] = true
	}
	if len(keys) != 2 {
		t.Errorf("distinct keys = %d, want 2 (%+v)", len(keys), c.events)
	}
}

func TestLenAndSlots(t *testing.T) {
	var c capture
	tbl := New(32, 10, c.report)
	if tbl.Slots() != 32 || tbl.Len() != 0 {
		t.Fatalf("fresh table: slots=%d len=%d", tbl.Slots(), tbl.Len())
	}
	tbl.Offer(congestionPacket(flowN(1), 1))
	if tbl.Len() != 1 {
		t.Errorf("Len = %d, want 1", tbl.Len())
	}
	tbl.Flush()
	if tbl.Len() != 0 {
		t.Errorf("Len after flush = %d, want 0", tbl.Len())
	}
}

func TestNewValidation(t *testing.T) {
	for _, f := range []func(){
		func() { New(0, 1, func(*fevent.Event) {}) },
		func() { New(1, 0, func(*fevent.Event) {}) },
		func() { New(1, 1, nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid New did not panic")
				}
			}()
			f()
		}()
	}
}

func TestACLAggregation(t *testing.T) {
	var c capture
	acl := NewACLAggregator(100, c.report)
	// 250 drops on rule 7 from many different flows.
	for i := 0; i < 250; i++ {
		ev := dropPacket(flowN(uint32(i)), fevent.DropACLDeny)
		acl.Offer(7, ev)
	}
	// Reports at 1, 100, 200.
	if len(c.events) != 3 {
		t.Fatalf("got %d reports, want 3", len(c.events))
	}
	for _, e := range c.events {
		if e.ACLRule != 7 || e.DropCode != fevent.DropACLDeny {
			t.Errorf("report = %+v", e)
		}
	}
	acl.Flush()
	last := c.events[len(c.events)-1]
	if last.Count != 250 {
		t.Errorf("final count = %d, want 250", last.Count)
	}
	if acl.RuleCount() != 1 {
		t.Errorf("RuleCount = %d", acl.RuleCount())
	}
}

func TestACLSeparateRules(t *testing.T) {
	var c capture
	acl := NewACLAggregator(1000, c.report)
	acl.Offer(1, dropPacket(flowN(1), fevent.DropACLDeny))
	acl.Offer(2, dropPacket(flowN(2), fevent.DropACLDeny))
	if len(c.events) != 2 || acl.RuleCount() != 2 {
		t.Fatalf("reports=%d rules=%d", len(c.events), acl.RuleCount())
	}
}

func TestACLCountSaturates(t *testing.T) {
	var c capture
	acl := NewACLAggregator(0xffff, c.report)
	ev := dropPacket(flowN(1), fevent.DropACLDeny)
	for i := 0; i < 70000; i++ {
		acl.Offer(3, ev)
	}
	acl.Flush()
	last := c.events[len(c.events)-1]
	if last.Count != 0xffff {
		t.Errorf("saturated count = %d, want 0xffff", last.Count)
	}
}

// TestBloomFalseNegativesExist demonstrates why the paper rejects Bloom
// filters: with enough distinct flow events, some first packets are
// suppressed.
func TestBloomFalseNegativesExist(t *testing.T) {
	var c capture
	bd := NewBloomDedup(256, 2, c.report) // deliberately small
	distinct := 0
	for i := 0; i < 2000; i++ {
		bd.Offer(congestionPacket(flowN(uint32(i)), 1))
		distinct++
	}
	_, reported := bd.Stats()
	if int(reported) >= distinct {
		t.Errorf("bloom reported %d of %d distinct events — expected false negatives at this density", reported, distinct)
	}
}

func TestBloomSuppressesDuplicates(t *testing.T) {
	var c capture
	bd := NewBloomDedup(1<<16, 3, c.report)
	f := flowN(1)
	for i := 0; i < 100; i++ {
		bd.Offer(congestionPacket(f, 1))
	}
	if len(c.events) != 1 {
		t.Errorf("bloom reported %d events for one flow, want 1", len(c.events))
	}
}

func TestBloomValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("invalid NewBloomDedup did not panic")
		}
	}()
	NewBloomDedup(0, 1, func(*fevent.Event) {})
}

func BenchmarkGroupCacheOffer(b *testing.B) {
	tbl := New(DefaultSlots, DefaultC, func(*fevent.Event) {})
	evs := make([]*fevent.Event, 64)
	for i := range evs {
		evs[i] = congestionPacket(flowN(uint32(i)), 1)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tbl.Offer(evs[i%len(evs)])
	}
}

func BenchmarkBloomOffer(b *testing.B) {
	bd := NewBloomDedup(1<<20, 3, func(*fevent.Event) {})
	evs := make([]*fevent.Event, 64)
	for i := range evs {
		evs[i] = congestionPacket(flowN(uint32(i)), 1)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bd.Offer(evs[i%len(evs)])
	}
}

// TestOfferZeroAllocSteadyState pins the group-cache ingest path — the
// per-event-packet hot path of Step 2 — at zero allocations, for both the
// aggregate outcome (working set fits) and the collision/evict outcome.
func TestOfferZeroAllocSteadyState(t *testing.T) {
	var reports uint64
	tbl := New(1<<10, 4, func(*fevent.Event) { reports++ })
	evs := make([]fevent.Event, 64)
	for i := range evs {
		evs[i] = *congestionPacket(flowN(uint32(i)), 1)
	}
	for i := range evs { // install every key once
		tbl.Offer(&evs[i])
	}
	var i int
	if n := testing.AllocsPerRun(1000, func() {
		tbl.Offer(&evs[i%len(evs)])
		i++
	}); n != 0 {
		t.Errorf("aggregate Offer allocates %v times per event; budget is 0", n)
	}

	// One slot: every alternating key collides and takes the evict path.
	evict := New(1, 4, func(*fevent.Event) { reports++ })
	var j int
	if n := testing.AllocsPerRun(1000, func() {
		evict.Offer(&evs[j%2])
		j++
	}); n != 0 {
		t.Errorf("evict Offer allocates %v times per event; budget is 0", n)
	}
	if reports == 0 {
		t.Fatal("report callback never fired — the measured path skipped emission")
	}
}
