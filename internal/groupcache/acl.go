package groupcache

import (
	"netseer/internal/fevent"
)

// ACLAggregator counts ACL-deny drops at rule granularity (§3.4): most ACL
// drops are intentional, so reporting one flow event per denied flow would
// flood the collector. Instead NetSeer keeps one counter per rule ID and
// reports the rule with its counter; the rule's own match field describes
// the affected traffic.
type ACLAggregator struct {
	c       uint16
	report  ReportFunc
	counter map[uint8]*aclState
	// scratch mirrors Table.scratch: emit reports a pointer into it so the
	// steady-state path does not allocate.
	scratch fevent.Event
}

type aclState struct {
	ev      fevent.Event
	counter uint32
	target  uint32
}

// NewACLAggregator creates an aggregator reporting every c drops per rule
// (and on first drop).
func NewACLAggregator(c uint16, report ReportFunc) *ACLAggregator {
	if c == 0 {
		panic("groupcache: C must be positive")
	}
	if report == nil {
		panic("groupcache: report must not be nil")
	}
	return &ACLAggregator{c: c, report: report, counter: make(map[uint8]*aclState)}
}

// Offer processes one ACL-denied packet attributed to rule.
func (a *ACLAggregator) Offer(rule uint8, ev *fevent.Event) {
	s := a.counter[rule]
	if s == nil {
		s = &aclState{target: uint32(a.c)}
		s.ev = *ev
		s.ev.DropCode = fevent.DropACLDeny
		s.ev.ACLRule = rule
		a.counter[rule] = s
	}
	s.counter++
	if s.counter == 1 || s.counter >= s.target {
		a.emit(s)
		if s.counter >= s.target {
			s.target += uint32(a.c)
		}
	}
}

func (a *ACLAggregator) emit(s *aclState) {
	a.scratch = s.ev
	if s.counter > 0xffff {
		a.scratch.Count = 0xffff
	} else {
		a.scratch.Count = uint16(s.counter)
	}
	a.report(&a.scratch)
}

// Flush reports the final counter of every rule.
func (a *ACLAggregator) Flush() {
	for _, s := range a.counter {
		a.emit(s)
	}
}

// RuleCount returns the number of distinct rules seen.
func (a *ACLAggregator) RuleCount() int { return len(a.counter) }
