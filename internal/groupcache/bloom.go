package groupcache

import (
	"hash/crc32"

	"netseer/internal/fevent"
)

// BloomDedup is the strawman the paper argues against (§3.4): a Bloom
// filter that reports an event packet only if its flow event has not been
// seen before. Memory-efficient, but hash collisions make it suppress the
// first packet of a colliding flow event — a false negative, which is
// unacceptable for network exoneration. It exists here as the ablation
// baseline for BenchmarkAblationDedup and the false-negative property test.
type BloomDedup struct {
	bits   []uint64
	nbits  uint32
	k      int
	report ReportFunc

	ingested uint64
	reported uint64
}

var bloomTable = crc32.MakeTable(crc32.Koopman)

// NewBloomDedup creates a Bloom-filter dedup with the given number of bits
// (rounded up to a multiple of 64) and k hash functions.
func NewBloomDedup(bits int, k int, report ReportFunc) *BloomDedup {
	if bits <= 0 || k <= 0 {
		panic("groupcache: bloom bits and k must be positive")
	}
	if report == nil {
		panic("groupcache: report must not be nil")
	}
	words := (bits + 63) / 64
	return &BloomDedup{
		bits:   make([]uint64, words),
		nbits:  uint32(words * 64),
		k:      k,
		report: report,
	}
}

func (b *BloomDedup) positions(key fevent.Key, out []uint32) {
	// Double hashing: h1 + i*h2, the standard Kirsch–Mitzenmacher scheme.
	var buf [20]byte
	key.Flow.PutWire(buf[:13])
	buf[13] = byte(key.Type)
	buf[14] = byte(key.DropCode)
	buf[15] = key.ACLRule
	h1 := crc32.Checksum(buf[:16], castagnoliBloom)
	h2 := crc32.Checksum(buf[:16], bloomTable) | 1
	for i := 0; i < b.k; i++ {
		out[i] = (h1 + uint32(i)*h2) % b.nbits
	}
}

var castagnoliBloom = crc32.MakeTable(crc32.Castagnoli)

// Offer processes one event packet: reported once per (believed-)new flow
// event, suppressed otherwise.
func (b *BloomDedup) Offer(ev *fevent.Event) {
	b.ingested++
	pos := make([]uint32, b.k)
	b.positions(ev.Key(), pos)
	seen := true
	for _, p := range pos {
		if b.bits[p/64]&(1<<(p%64)) == 0 {
			seen = false
		}
	}
	if seen {
		return
	}
	for _, p := range pos {
		b.bits[p/64] |= 1 << (p % 64)
	}
	b.reported++
	out := *ev
	out.Count = 1
	b.report(&out)
}

// Stats reports offered and emitted counts.
func (b *BloomDedup) Stats() (ingested, reported uint64) {
	return b.ingested, b.reported
}
