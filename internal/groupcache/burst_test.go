package groupcache

import (
	"reflect"
	"testing"

	"netseer/internal/fevent"
)

// Burst-boundary properties: OfferBurst must be observationally identical
// to the equivalent sequence of Offer calls — same reported event stream
// in the same order, same stats — including when the burst spans slot
// evictions (the Algorithm 1 collision path fires mid-burst).

func burstFlows(n int) []fevent.Event {
	evs := make([]fevent.Event, n)
	for i := range evs {
		evs[i] = *congestionPacket(flowN(uint32(i)), uint16(10+i))
	}
	return evs
}

func offerBurstCase(t *testing.T, slots int, c uint16, evs []fevent.Event) {
	t.Helper()
	var gotBurst, gotSeq []fevent.Event
	tb := New(slots, c, func(e *fevent.Event) { gotBurst = append(gotBurst, *e) })
	ts := New(slots, c, func(e *fevent.Event) { gotSeq = append(gotSeq, *e) })

	tb.OfferBurst(evs)
	for i := range evs {
		ts.Offer(&evs[i])
	}

	if !reflect.DeepEqual(gotBurst, gotSeq) {
		t.Fatalf("reported streams differ: burst %d events, sequential %d", len(gotBurst), len(gotSeq))
	}
	bi, br, bm, be := tb.Stats()
	si, sr, sm, se := ts.Stats()
	if bi != si || br != sr || bm != sm || be != se {
		t.Fatalf("stats diverge: burst (%d,%d,%d,%d) vs sequential (%d,%d,%d,%d)",
			bi, br, bm, be, si, sr, sm, se)
	}
	tb.Flush()
	ts.Flush()
	if !reflect.DeepEqual(gotBurst, gotSeq) {
		t.Errorf("flushed streams differ")
	}
}

func TestOfferBurstMatchesSequentialOffer(t *testing.T) {
	t.Run("empty burst", func(t *testing.T) {
		offerBurstCase(t, 8, 4, nil)
	})
	t.Run("single event", func(t *testing.T) {
		offerBurstCase(t, 8, 4, burstFlows(1))
	})
	t.Run("spans eviction", func(t *testing.T) {
		// 4 slots, 32 distinct flows: most offers collide with a live
		// entry and evict it mid-burst.
		evs := burstFlows(32)
		offerBurstCase(t, 4, 4, evs)
		tb := New(4, 4, func(*fevent.Event) {})
		tb.OfferBurst(evs)
		if _, _, _, evictions := tb.Stats(); evictions == 0 {
			t.Fatal("burst did not span an eviction — case is vacuous")
		}
	})
	t.Run("repeats within burst aggregate", func(t *testing.T) {
		evs := append(burstFlows(6), burstFlows(6)...)
		offerBurstCase(t, 8, 4, evs)
	})
}
