package host

import (
	"netseer/internal/sim"
)

// RPC is a request/response exchange between two hosts over a pair of
// TCP-lite connections, with measurable end-to-end latency — the shape of
// the block-storage workload in the paper's SLA case study (§5.1).
type RPC struct {
	Client *Host
	Server *Host

	cfg RPCConfig

	cliConn *Conn // client → server (requests)
	srvConn *Conn // server → client (responses)

	reqSegs  int
	respSegs int

	// server-side progress in segments toward the current request.
	gotReq int
	// client-side progress toward the current response.
	gotResp int

	started  sim.Time
	inflight bool
	stopped  bool

	// Latencies records one entry per completed call.
	Latencies []sim.Time
	onDone    func(lat sim.Time)
}

// RPCConfig parameterizes an RPC channel.
type RPCConfig struct {
	ClientPort uint16
	ServerPort uint16
	// ReqBytes / RespBytes size each call (defaults 4 kB / 64 kB).
	ReqBytes  int
	RespBytes int
	// Processing returns the server-side service time per call
	// (default: constant 10 µs). Inject app-side stalls here.
	Processing func() sim.Time
	// Conn carries transport parameters.
	Conn ConnConfig
}

func (c RPCConfig) withDefaults() RPCConfig {
	if c.ClientPort == 0 {
		c.ClientPort = 40001
	}
	if c.ServerPort == 0 {
		c.ServerPort = 5000
	}
	if c.ReqBytes <= 0 {
		c.ReqBytes = 4 << 10
	}
	if c.RespBytes <= 0 {
		c.RespBytes = 64 << 10
	}
	if c.Processing == nil {
		c.Processing = func() sim.Time { return 10 * sim.Microsecond }
	}
	return c
}

// NewRPC wires an RPC channel between client and server.
func NewRPC(client, server *Host, cfg RPCConfig) *RPC {
	cfg = cfg.withDefaults()
	conn := cfg.Conn.withDefaults()
	r := &RPC{Client: client, Server: server, cfg: cfg}
	r.reqSegs = (cfg.ReqBytes + conn.MSS - 1) / conn.MSS
	r.respSegs = (cfg.RespBytes + conn.MSS - 1) / conn.MSS
	r.cliConn = client.Dial(server.Node.IP, cfg.ClientPort, cfg.ServerPort, conn)
	// Server side of the request stream.
	server.Accept(client.Node.IP, cfg.ServerPort, cfg.ClientPort, conn, func(seq, size int) {
		r.gotReq++
		if r.gotReq >= r.reqSegs {
			r.gotReq -= r.reqSegs
			delay := r.cfg.Processing()
			server.sim.Schedule(delay, func() {
				r.srvConn.Send(r.cfg.RespBytes)
			})
		}
	})
	// Response stream: server → client.
	r.srvConn = server.Dial(client.Node.IP, cfg.ServerPort+1, cfg.ClientPort+1, conn)
	client.Accept(server.Node.IP, cfg.ClientPort+1, cfg.ServerPort+1, conn, func(seq, size int) {
		r.gotResp++
		if r.gotResp >= r.respSegs {
			r.gotResp -= r.respSegs
			r.complete()
		}
	})
	return r
}

// Call issues one RPC; at most one may be in flight per channel.
func (r *RPC) Call() {
	if r.inflight || r.stopped {
		return
	}
	r.inflight = true
	r.started = r.Client.sim.Now()
	r.cliConn.Send(r.cfg.ReqBytes)
}

func (r *RPC) complete() {
	if !r.inflight {
		return
	}
	r.inflight = false
	lat := r.Client.sim.Now() - r.started
	r.Latencies = append(r.Latencies, lat)
	if r.onDone != nil {
		r.onDone(lat)
	}
}

// Loop issues calls closed-loop with the given think time between a
// completion and the next call, until Stop is called or the simulation
// ends.
func (r *RPC) Loop(think sim.Time) {
	prev := r.onDone
	r.onDone = func(lat sim.Time) {
		if prev != nil {
			prev(lat)
		}
		if !r.stopped {
			r.Client.sim.Schedule(think, r.Call)
		}
	}
	r.Call()
}

// Stop ends a Loop after the in-flight call completes.
func (r *RPC) Stop() { r.stopped = true }

// OnDone registers a completion callback (composes with Loop if set
// before Loop).
func (r *RPC) OnDone(fn func(lat sim.Time)) { r.onDone = fn }

// Retransmits reports total transport retransmissions on both directions.
func (r *RPC) Retransmits() uint64 {
	return r.cliConn.Retransmits + r.srvConn.Retransmits
}
