package host

import (
	"testing"

	"netseer/internal/dataplane"
	"netseer/internal/link"
	"netseer/internal/nic"
	"netseer/internal/pkt"
	"netseer/internal/sim"
	"netseer/internal/topo"
)

// testNet builds the 10-switch testbed with plain hosts on every node.
type testNet struct {
	sim   *sim.Simulator
	fab   *dataplane.Fabric
	hosts []*Host
	pktID uint64
}

func newTestNet(t *testing.T, swCfg dataplane.Config, ncfg nic.Config) *testNet {
	t.Helper()
	s := sim.New()
	tp := topo.Testbed()
	routes := topo.BuildRoutes(tp)
	gt := dataplane.NewGroundTruth()
	fab := dataplane.BuildFabric(s, tp, routes, swCfg, gt, 11)
	n := &testNet{sim: s, fab: fab}
	for _, hn := range tp.Hosts() {
		n.hosts = append(n.hosts, Attach(s, fab, hn, ncfg, &n.pktID))
	}
	return n
}

func TestUDPDeliveryAcrossFabric(t *testing.T) {
	n := newTestNet(t, dataplane.Config{}, nic.Config{})
	src, dst := n.hosts[0], n.hosts[31]
	flow := pkt.FlowKey{SrcIP: src.Node.IP, DstIP: dst.Node.IP, SrcPort: 1000, DstPort: 9000, Proto: pkt.ProtoUDP}
	var got int
	dst.Handle(9000, func(p *pkt.Packet) { got++ })
	src.SendUDP(flow, 50, 724, 0)
	n.sim.RunAll()
	if got != 50 {
		t.Fatalf("delivered %d of 50 packets", got)
	}
}

func TestNICSeqTagStrippedBeforeHost(t *testing.T) {
	n := newTestNet(t, dataplane.Config{}, nic.Config{})
	src, dst := n.hosts[0], n.hosts[16]
	flow := pkt.FlowKey{SrcIP: src.Node.IP, DstIP: dst.Node.IP, SrcPort: 1, DstPort: 9000, Proto: pkt.ProtoUDP}
	dst.Handle(9000, func(p *pkt.Packet) {
		if p.HasSeqTag {
			t.Error("seq tag reached the host stack")
		}
		if p.WireLen != 724 {
			t.Errorf("wire length %d, want original 724", p.WireLen)
		}
	})
	src.SendUDP(flow, 3, 724, 0)
	n.sim.RunAll()
}

func TestProbeEcho(t *testing.T) {
	n := newTestNet(t, dataplane.Config{}, nic.Config{})
	src, dst := n.hosts[0], n.hosts[20]
	var rtts []sim.Time
	src.OnProbeEcho(func(peer uint32, rtt sim.Time) {
		if peer != dst.Node.IP {
			t.Errorf("echo from wrong peer %v", pkt.IPString(peer))
		}
		rtts = append(rtts, rtt)
	})
	src.SendProbe(dst.Node.IP)
	n.sim.RunAll()
	if len(rtts) != 1 {
		t.Fatalf("got %d echoes, want 1", len(rtts))
	}
	if rtts[0] <= 0 || rtts[0] > sim.Millisecond {
		t.Errorf("rtt = %v, implausible", rtts[0])
	}
}

func TestEdgeLinkLossDetectedByNICs(t *testing.T) {
	n := newTestNet(t, dataplane.Config{}, nic.Config{})
	src, dst := n.hosts[0], n.hosts[1] // same ToR
	flow := pkt.FlowKey{SrcIP: src.Node.IP, DstIP: dst.Node.IP, SrcPort: 7, DstPort: 9000, Proto: pkt.ProtoUDP}
	dst.Handle(9000, func(*pkt.Packet) {})
	src.SendUDP(flow, 5, 300, 0)
	n.sim.RunAll()
	// Silently kill frames on src's access link, then resume traffic.
	at := n.fab.HostPorts[src.Node.ID][0]
	at.Link.InjectLossBurst(at.FromA, 2)
	src.SendUDP(flow, 2, 300, 0) // lost
	src.SendUDP(flow, 5, 300, 0) // reveal the gap downstream (ToR)
	n.sim.RunAll()
	// The ToR's NetSeer would report these; without NetSeer the NIC logs
	// nothing here (loss is toward the switch). Now kill the reverse
	// direction: dst→... use dst as sender.
	flowBack := flow.Reverse()
	src.Handle(7, func(*pkt.Packet) {})
	dst.SendUDP(flowBack, 5, 300, 0)
	n.sim.RunAll()
	atDst := n.fab.HostPorts[src.Node.ID][0]
	// Loss on the ToR→src direction: the src NIC detects the gap, the ToR
	// (upstream) would recover flows. Here both ends are NICs only on the
	// host side, so check the NIC's gap counter via a direct pair below.
	_ = atDst
	_, _, _, gaps := src.NIC.Stats()
	_ = gaps // fabric side handles this; detailed NIC log test below
}

func TestNICRecoversLossViaLog(t *testing.T) {
	// Two NICs on one raw link: loss toward B is detected by B's tracker
	// and recovered from A's ring into A's local log.
	s := sim.New()
	rng := sim.NewStream(1, "nic-test")
	var aNIC, bNIC *nic.NIC
	l := link.New(s, link.Endpoint{Dev: &deferredDev{&aNIC}, Port: 0},
		link.Endpoint{Dev: &deferredDev{&bNIC}, Port: 0}, sim.Microsecond, rng)
	aNIC = nic.New(s, l, true, nic.Config{}, func(*pkt.Packet) {})
	bNIC = nic.New(s, l, false, nic.Config{}, func(*pkt.Packet) {})
	flow := pkt.FlowKey{SrcIP: 1, DstIP: 2, SrcPort: 3, DstPort: 4, Proto: pkt.ProtoUDP}
	mk := func(id uint64) *pkt.Packet {
		return &pkt.Packet{ID: id, Kind: pkt.KindData, Flow: flow, WireLen: 300, TTL: 64}
	}
	for i := 0; i < 3; i++ {
		aNIC.Send(mk(uint64(i)))
	}
	s.RunAll()
	l.InjectLossBurst(true, 2)
	aNIC.Send(mk(10))
	aNIC.Send(mk(11))
	for i := 0; i < 3; i++ {
		aNIC.Send(mk(uint64(20 + i)))
	}
	s.RunAll()
	if len(aNIC.Log) != 2 {
		t.Fatalf("NIC log has %d events, want 2", len(aNIC.Log))
	}
	for _, e := range aNIC.Log {
		if e.Flow != flow {
			t.Errorf("log attributed wrong flow %v", e.Flow)
		}
	}
}

type deferredDev struct{ n **nic.NIC }

func (d *deferredDev) Receive(p *pkt.Packet, port int) {
	if *d.n != nil {
		(*d.n).Receive(p, port)
	}
}

func TestConnReliableDelivery(t *testing.T) {
	n := newTestNet(t, dataplane.Config{}, nic.Config{})
	cli, srv := n.hosts[0], n.hosts[31]
	var gotSegs int
	srv.Accept(cli.Node.IP, 5000, 4000, ConnConfig{}, func(seq, size int) { gotSegs++ })
	c := cli.Dial(srv.Node.IP, 4000, 5000, ConnConfig{})
	c.Send(100 * 1400) // 100 segments
	n.sim.RunAll()
	if gotSegs != 100 {
		t.Fatalf("delivered %d of 100 segments", gotSegs)
	}
	if !c.Idle() {
		t.Error("sender not idle after full delivery")
	}
	if c.Retransmits != 0 {
		t.Errorf("unexpected retransmits on a clean path: %d", c.Retransmits)
	}
}

func TestConnRetransmitsThroughLoss(t *testing.T) {
	n := newTestNet(t, dataplane.Config{}, nic.Config{})
	cli, srv := n.hosts[0], n.hosts[31]
	var gotSegs int
	srv.Accept(cli.Node.IP, 5000, 4000, ConnConfig{RTO: 100 * sim.Microsecond}, func(seq, size int) { gotSegs++ })
	c := cli.Dial(srv.Node.IP, 4000, 5000, ConnConfig{RTO: 100 * sim.Microsecond})
	// 10% loss on the client's access link.
	at := n.fab.HostPorts[cli.Node.ID][0]
	at.Link.SetFault(at.FromA, link.Fault{SilentLossProb: 0.1})
	c.Send(200 * 1400)
	n.sim.Run(2 * sim.Second)
	if gotSegs != 200 {
		t.Fatalf("delivered %d of 200 segments through loss", gotSegs)
	}
	if c.Retransmits == 0 {
		t.Error("no retransmissions despite 10%% loss")
	}
}

func TestRPCLatencyBaseline(t *testing.T) {
	n := newTestNet(t, dataplane.Config{}, nic.Config{})
	cli, srv := n.hosts[0], n.hosts[31]
	r := NewRPC(cli, srv, RPCConfig{})
	for i := 0; i < 5; i++ {
		r.Call()
		n.sim.RunAll()
	}
	if len(r.Latencies) != 5 {
		t.Fatalf("completed %d of 5 calls", len(r.Latencies))
	}
	for _, lat := range r.Latencies {
		if lat <= 0 || lat > 10*sim.Millisecond {
			t.Errorf("latency %v implausible for an idle fabric", lat)
		}
	}
	if r.Retransmits() != 0 {
		t.Errorf("retransmits on idle fabric: %d", r.Retransmits())
	}
}

func TestRPCLatencySpikesUnderLoss(t *testing.T) {
	n := newTestNet(t, dataplane.Config{}, nic.Config{})
	cli, srv := n.hosts[0], n.hosts[31]
	r := NewRPC(cli, srv, RPCConfig{Conn: ConnConfig{RTO: 500 * sim.Microsecond}})
	r.Call()
	n.sim.RunAll()
	clean := r.Latencies[0]
	// Now 30% loss on the server's access link (responses suffer).
	at := n.fab.HostPorts[srv.Node.ID][0]
	at.Link.SetFault(at.FromA, link.Fault{SilentLossProb: 0.3})
	r.Call()
	n.sim.Run(5 * sim.Second)
	if len(r.Latencies) != 2 {
		t.Fatalf("lossy call did not complete: %d", len(r.Latencies))
	}
	if r.Latencies[1] <= clean {
		t.Errorf("lossy latency %v not above clean %v", r.Latencies[1], clean)
	}
	if r.Retransmits() == 0 {
		t.Error("no retransmits under 30% loss")
	}
}

func TestRPCLoopClosedLoop(t *testing.T) {
	n := newTestNet(t, dataplane.Config{}, nic.Config{})
	cli, srv := n.hosts[2], n.hosts[20]
	r := NewRPC(cli, srv, RPCConfig{RespBytes: 8 << 10})
	r.Loop(100 * sim.Microsecond)
	n.sim.Run(20 * sim.Millisecond)
	if len(r.Latencies) < 10 {
		t.Fatalf("closed loop completed only %d calls in 20 ms", len(r.Latencies))
	}
}

func TestRPCProcessingDelayInjection(t *testing.T) {
	n := newTestNet(t, dataplane.Config{}, nic.Config{})
	cli, srv := n.hosts[0], n.hosts[31]
	stall := sim.Time(0)
	r := NewRPC(cli, srv, RPCConfig{
		Processing: func() sim.Time { return stall },
	})
	r.Call()
	n.sim.RunAll()
	base := r.Latencies[0]
	stall = 5 * sim.Millisecond // the SSD-firmware-style app stall
	r.Call()
	n.sim.RunAll()
	if got := r.Latencies[1]; got < base+4*sim.Millisecond {
		t.Errorf("stalled latency %v, want >= %v", got, base+4*sim.Millisecond)
	}
}
