package host

import (
	"testing"

	"netseer/internal/dataplane"
	"netseer/internal/link"
	"netseer/internal/nic"
	"netseer/internal/sim"
)

// Transport-focused tests beyond the fabric-level ones in host_test.go.

func TestConnWindowLimitsInFlight(t *testing.T) {
	n := newTestNet(t, dataplane.Config{}, nic.Config{})
	cli, srv := n.hosts[0], n.hosts[31]
	srv.Accept(cli.Node.IP, 5000, 4000, ConnConfig{Window: 4}, func(int, int) {})
	c := cli.Dial(srv.Node.IP, 4000, 5000, ConnConfig{Window: 4})
	c.Send(100 * 1400)
	// Before anything is acked, in-flight is capped at the window.
	if c.InFlight() > 4 {
		t.Errorf("in-flight = %d, window 4", c.InFlight())
	}
	n.sim.RunAll()
	if !c.Idle() {
		t.Error("not idle after delivery")
	}
}

func TestConnOutOfOrderDelivery(t *testing.T) {
	// ECMP reorders nothing in this fabric, so emulate reordering by
	// injecting segment loss and verifying in-order delivery at the
	// receiver despite retransmission (Go-back-N refills the hole).
	n := newTestNet(t, dataplane.Config{}, nic.Config{})
	cli, srv := n.hosts[0], n.hosts[31]
	var seqs []int
	srv.Accept(cli.Node.IP, 5000, 4000, ConnConfig{RTO: 100 * sim.Microsecond}, func(seq, size int) {
		seqs = append(seqs, seq)
	})
	c := cli.Dial(srv.Node.IP, 4000, 5000, ConnConfig{RTO: 100 * sim.Microsecond})
	at := n.fab.HostPorts[cli.Node.ID][0]
	at.Link.SetFault(at.FromA, link.Fault{SilentLossProb: 0.2})
	c.Send(50 * 1400)
	n.sim.Run(sim.Second)
	if len(seqs) != 50 {
		t.Fatalf("delivered %d of 50 segments", len(seqs))
	}
	for i, s := range seqs {
		if s != i {
			t.Fatalf("out-of-order upcall: position %d got seq %d", i, s)
		}
	}
}

func TestConnDuplicateDataIgnored(t *testing.T) {
	// Loss of ACKs forces retransmissions of already-delivered segments;
	// the receiver must not double-deliver.
	n := newTestNet(t, dataplane.Config{}, nic.Config{})
	cli, srv := n.hosts[0], n.hosts[31]
	delivered := 0
	srv.Accept(cli.Node.IP, 5000, 4000, ConnConfig{RTO: 100 * sim.Microsecond}, func(int, int) {
		delivered++
	})
	c := cli.Dial(srv.Node.IP, 4000, 5000, ConnConfig{RTO: 100 * sim.Microsecond})
	// Lose ACKs: fault on the server's outbound direction.
	at := n.fab.HostPorts[srv.Node.ID][0]
	at.Link.SetFault(at.FromA, link.Fault{SilentLossProb: 0.3})
	c.Send(30 * 1400)
	n.sim.Run(sim.Second)
	if delivered != 30 {
		t.Fatalf("delivered %d of 30 (duplicates or loss)", delivered)
	}
	if c.Retransmits == 0 {
		t.Error("no retransmits despite ACK loss")
	}
}

func TestConnSmallSend(t *testing.T) {
	n := newTestNet(t, dataplane.Config{}, nic.Config{})
	cli, srv := n.hosts[0], n.hosts[1]
	var sizes []int
	srv.Accept(cli.Node.IP, 5000, 4000, ConnConfig{}, func(seq, size int) {
		sizes = append(sizes, size)
	})
	c := cli.Dial(srv.Node.IP, 4000, 5000, ConnConfig{})
	c.Send(100) // less than one MSS
	n.sim.RunAll()
	if len(sizes) != 1 {
		t.Fatalf("delivered %d segments, want 1", len(sizes))
	}
	if !c.Idle() {
		t.Error("not idle")
	}
}

func TestConnMultipleSends(t *testing.T) {
	n := newTestNet(t, dataplane.Config{}, nic.Config{})
	cli, srv := n.hosts[0], n.hosts[31]
	got := 0
	srv.Accept(cli.Node.IP, 5000, 4000, ConnConfig{}, func(int, int) { got++ })
	c := cli.Dial(srv.Node.IP, 4000, 5000, ConnConfig{})
	c.Send(10 * 1400)
	n.sim.RunAll()
	c.Send(5 * 1400)
	n.sim.RunAll()
	if got != 15 {
		t.Errorf("delivered %d of 15 across two sends", got)
	}
}

func TestRPCStopEndsLoop(t *testing.T) {
	n := newTestNet(t, dataplane.Config{}, nic.Config{})
	r := NewRPC(n.hosts[0], n.hosts[31], RPCConfig{RespBytes: 4 << 10})
	r.Loop(10 * sim.Microsecond)
	n.sim.Run(2 * sim.Millisecond)
	r.Stop()
	n.sim.RunAll() // must terminate
	if len(r.Latencies) == 0 {
		t.Fatal("loop completed no calls")
	}
	done := len(r.Latencies)
	n.sim.RunAll()
	if len(r.Latencies) != done {
		t.Error("calls completed after Stop+drain")
	}
}

func TestAIMDWindowGrowsOnCleanPath(t *testing.T) {
	n := newTestNet(t, dataplane.Config{}, nic.Config{})
	cli, srv := n.hosts[0], n.hosts[31]
	srv.Accept(cli.Node.IP, 5000, 4000, ConnConfig{AIMD: true}, func(int, int) {})
	c := cli.Dial(srv.Node.IP, 4000, 5000, ConnConfig{AIMD: true, Window: 64})
	if c.Cwnd() != 2 {
		t.Fatalf("initial cwnd = %d, want 2", c.Cwnd())
	}
	c.Send(200 * 1400)
	n.sim.RunAll()
	if c.Cwnd() <= 2 {
		t.Errorf("cwnd did not grow on a clean path: %d", c.Cwnd())
	}
	if !c.Idle() {
		t.Error("not idle after delivery")
	}
}

func TestAIMDBacksOffOnLoss(t *testing.T) {
	n := newTestNet(t, dataplane.Config{}, nic.Config{})
	cli, srv := n.hosts[0], n.hosts[31]
	srv.Accept(cli.Node.IP, 5000, 4000, ConnConfig{AIMD: true, RTO: 100 * sim.Microsecond}, func(int, int) {})
	c := cli.Dial(srv.Node.IP, 4000, 5000, ConnConfig{AIMD: true, Window: 64, RTO: 100 * sim.Microsecond})
	// Grow the window first.
	c.Send(100 * 1400)
	n.sim.RunAll()
	grown := c.Cwnd()
	// Sustained loss: the window must shrink below its grown value.
	at := n.fab.HostPorts[cli.Node.ID][0]
	at.Link.SetFault(at.FromA, link.Fault{SilentLossProb: 0.5})
	c.Send(50 * 1400)
	n.sim.Run(n.sim.Now() + 5*sim.Millisecond)
	shrunk := c.Cwnd()
	if shrunk >= grown {
		t.Errorf("cwnd %d did not back off from %d under 50%% loss", shrunk, grown)
	}
	// Recovery: clear the fault and finish.
	at.Link.SetFault(at.FromA, link.Fault{})
	n.sim.Run(n.sim.Now() + 2*sim.Second)
	if !c.Idle() {
		t.Error("transfer did not complete after fault cleared")
	}
}

func TestAIMDRespectsMaxWindow(t *testing.T) {
	n := newTestNet(t, dataplane.Config{}, nic.Config{})
	cli, srv := n.hosts[0], n.hosts[1]
	srv.Accept(cli.Node.IP, 5000, 4000, ConnConfig{AIMD: true}, func(int, int) {})
	c := cli.Dial(srv.Node.IP, 4000, 5000, ConnConfig{AIMD: true, Window: 4})
	c.Send(500 * 1400)
	n.sim.RunAll()
	if c.Cwnd() > 4 {
		t.Errorf("cwnd %d exceeded max window 4", c.Cwnd())
	}
	if !c.Idle() {
		t.Error("not idle")
	}
}
