package host

import (
	"encoding/binary"

	"netseer/internal/pkt"
	"netseer/internal/sim"
)

// Conn is "TCP-lite": a unidirectional reliable byte-segment stream with
// cumulative ACKs, timeout retransmission, and either a fixed window or
// AIMD congestion control (ConnConfig.AIMD). It is just enough transport
// to reproduce the RPC behaviours the paper's case studies depend on:
// packet drops cause retransmissions and latency spikes; congestion
// causes queuing delay and backoff.
type Conn struct {
	host *Host
	flow pkt.FlowKey // local → remote
	cfg  ConnConfig

	// Sender state.
	segments  []segment // all segments ever queued, indexed by seq
	sndNext   int       // next unsent segment
	sndUna    int       // oldest unacked segment
	rtoHandle sim.Handle
	rtoArmed  bool

	// AIMD state (used when cfg.AIMD).
	cwnd     int // congestion window in segments
	ackCount int // ACK progress toward the next additive increase

	// Receiver state.
	rcvNext  int
	received map[int]bool
	onSeg    func(seq int, size int)

	// Stats.
	Retransmits uint64
	Delivered   uint64
}

// ConnConfig parameterizes a Conn.
type ConnConfig struct {
	// Window is the send window in segments (default 32). With AIMD set,
	// this is the maximum window.
	Window int
	// MSS is the segment wire size in bytes (default 1400).
	MSS int
	// RTO is the retransmission timeout (default 1 ms).
	RTO sim.Time
	// Priority selects the egress queue.
	Priority uint8
	// AIMD enables additive-increase/multiplicative-decrease congestion
	// control: the effective window starts at 2 segments, grows by one
	// per window of ACKs, and halves on every timeout — the first-order
	// behaviour of the production transports whose traffic the paper
	// monitors.
	AIMD bool
}

func (c ConnConfig) withDefaults() ConnConfig {
	if c.Window <= 0 {
		c.Window = 32
	}
	if c.MSS <= 0 {
		c.MSS = 1400
	}
	if c.RTO <= 0 {
		c.RTO = sim.Millisecond
	}
	return c
}

type segment struct {
	size  int
	acked bool
}

// Dial creates a connection from h to the remote address. Segments
// delivered in order at the receiver invoke onSeg there; the remote host
// must also Accept the connection.
func (h *Host) Dial(remoteIP uint32, localPort, remotePort uint16, cfg ConnConfig) *Conn {
	flow := pkt.FlowKey{SrcIP: h.Node.IP, DstIP: remoteIP, SrcPort: localPort, DstPort: remotePort, Proto: pkt.ProtoTCP}
	c := &Conn{host: h, flow: flow, cfg: cfg.withDefaults(), received: make(map[int]bool)}
	c.cwnd = 2
	h.conns[connKey{remoteIP, localPort, remotePort}] = c
	return c
}

// Accept registers the receiving side of a connection, invoking onSeg
// for every in-order segment.
func (h *Host) Accept(remoteIP uint32, localPort, remotePort uint16, cfg ConnConfig, onSeg func(seq, size int)) *Conn {
	flow := pkt.FlowKey{SrcIP: h.Node.IP, DstIP: remoteIP, SrcPort: localPort, DstPort: remotePort, Proto: pkt.ProtoTCP}
	c := &Conn{host: h, flow: flow, cfg: cfg.withDefaults(), received: make(map[int]bool), onSeg: onSeg}
	c.cwnd = 2
	h.conns[connKey{remoteIP, localPort, remotePort}] = c
	return c
}

// Send queues n bytes (rounded up to whole segments) for transmission.
func (c *Conn) Send(n int) {
	for n > 0 {
		sz := c.cfg.MSS
		if n < sz {
			sz = n
		}
		c.segments = append(c.segments, segment{size: sz})
		n -= sz
	}
	c.pump()
}

// InFlight returns the count of sent-but-unacked segments.
func (c *Conn) InFlight() int { return c.sndNext - c.sndUna }

// Idle reports whether everything queued has been acknowledged.
func (c *Conn) Idle() bool { return c.sndUna == len(c.segments) }

// window returns the current effective send window in segments.
func (c *Conn) window() int {
	if !c.cfg.AIMD {
		return c.cfg.Window
	}
	w := c.cwnd
	if w > c.cfg.Window {
		w = c.cfg.Window
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Cwnd returns the current congestion window (equals the configured
// window when AIMD is off).
func (c *Conn) Cwnd() int { return c.window() }

// pump transmits while the window allows.
func (c *Conn) pump() {
	for c.sndNext < len(c.segments) && c.InFlight() < c.window() {
		c.transmit(c.sndNext)
		c.sndNext++
	}
	c.armRTO()
}

func (c *Conn) transmit(seq int) {
	var payload [9]byte
	payload[0] = msgData
	binary.BigEndian.PutUint64(payload[1:], uint64(seq))
	c.host.send(c.flow, c.segments[seq].size, c.cfg.Priority, payload[:])
}

func (c *Conn) armRTO() {
	if c.rtoArmed || c.sndUna >= c.sndNext {
		return
	}
	c.rtoArmed = true
	c.rtoHandle = c.host.sim.Schedule(c.cfg.RTO, c.onRTO)
}

func (c *Conn) onRTO() {
	c.rtoArmed = false
	if c.sndUna >= len(c.segments) {
		return
	}
	// Multiplicative decrease: a timeout signals loss.
	if c.cfg.AIMD {
		c.cwnd /= 2
		if c.cwnd < 1 {
			c.cwnd = 1
		}
		c.ackCount = 0
	}
	// Go-back-N: retransmit the window from the oldest unacked segment.
	end := c.sndNext
	for seq := c.sndUna; seq < end; seq++ {
		c.Retransmits++
		c.transmit(seq)
	}
	c.armRTO()
}

// Message type bytes inside the 9-byte control payload.
const (
	msgData byte = iota + 1
	msgAck
)

// receive handles a segment or ACK arriving at either side.
func (c *Conn) receive(p *pkt.Packet) {
	if len(p.Payload) < 9 {
		return
	}
	kind := p.Payload[0]
	seq := int(binary.BigEndian.Uint64(p.Payload[1:9]))
	switch kind {
	case msgData:
		c.onData(seq, p.WireLen)
	case msgAck:
		c.onAck(seq)
	}
}

func (c *Conn) onData(seq, size int) {
	if seq >= c.rcvNext && !c.received[seq] {
		c.received[seq] = true
		for c.received[c.rcvNext] {
			delete(c.received, c.rcvNext)
			c.Delivered++
			if c.onSeg != nil {
				c.onSeg(c.rcvNext, size)
			}
			c.rcvNext++
		}
	}
	// Cumulative ACK (rcvNext = next expected).
	var payload [9]byte
	payload[0] = msgAck
	binary.BigEndian.PutUint64(payload[1:], uint64(c.rcvNext))
	c.host.send(c.flow, 64, c.cfg.Priority, payload[:])
}

func (c *Conn) onAck(cum int) {
	if cum <= c.sndUna {
		return
	}
	acked := cum - c.sndUna
	for seq := c.sndUna; seq < cum && seq < len(c.segments); seq++ {
		c.segments[seq].acked = true
	}
	c.sndUna = cum
	// Additive increase: one segment per window's worth of ACKs.
	if c.cfg.AIMD {
		c.ackCount += acked
		if c.ackCount >= c.cwnd {
			c.ackCount -= c.cwnd
			if c.cwnd < c.cfg.Window {
				c.cwnd++
			}
		}
	}
	if c.rtoArmed {
		c.host.sim.Cancel(c.rtoHandle)
		c.rtoArmed = false
	}
	c.pump()
}
