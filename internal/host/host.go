// Package host provides traffic endpoints over the simulated fabric: a
// generic host with per-port service dispatch, an open-loop UDP sender,
// a small reliable windowed transport ("TCP-lite") with timeout
// retransmission, and an RPC layer used by the SLA-violation case study
// (Fig. 8(b)).
package host

import (
	"fmt"

	"netseer/internal/dataplane"
	"netseer/internal/nic"
	"netseer/internal/pkt"
	"netseer/internal/sim"
	"netseer/internal/topo"
)

// Host is one server: a NIC plus protocol endpoints.
type Host struct {
	Node topo.Node
	NIC  *nic.NIC
	sim  *sim.Simulator

	nextPktID *uint64 // shared across all hosts for globally unique IDs

	// services dispatch received data packets by destination port.
	services map[uint16]func(p *pkt.Packet)
	// conns dispatch TCP-lite segments by (peer, ports).
	conns map[connKey]*Conn

	received uint64

	// onProbeEcho is invoked with the measured RTT when a probe echo
	// returns.
	onProbeEcho func(peer uint32, rtt sim.Time)
}

type connKey struct {
	peerIP     uint32
	localPort  uint16
	remotePort uint16
}

// Attach builds a host on a fabric attach point. pktID is the shared
// packet-ID counter for the whole simulation.
func Attach(s *sim.Simulator, fab *dataplane.Fabric, node topo.Node, ncfg nic.Config, pktID *uint64) *Host {
	h := &Host{
		Node: node, sim: s, nextPktID: pktID,
		services: make(map[uint16]func(*pkt.Packet)),
		conns:    make(map[connKey]*Conn),
	}
	at := fab.HostPorts[node.ID][0]
	h.NIC = nic.New(s, at.Link, at.FromA, ncfg, h.deliver)
	fab.AttachHost(node.ID, h.NIC)
	return h
}

// Handle registers a service on a destination port.
func (h *Host) Handle(port uint16, fn func(p *pkt.Packet)) {
	h.services[port] = fn
}

// Received returns the count of data packets delivered to this host.
func (h *Host) Received() uint64 { return h.received }

func (h *Host) deliver(p *pkt.Packet) {
	h.received++
	if p.Kind == pkt.KindProbe {
		h.deliverProbe(p)
		return
	}
	if c, ok := h.conns[connKey{p.Flow.SrcIP, p.Flow.DstPort, p.Flow.SrcPort}]; ok {
		c.receive(p)
		return
	}
	if fn, ok := h.services[p.Flow.DstPort]; ok {
		fn(p)
	}
}

// deliverProbe echoes probe requests and completes returning echoes.
func (h *Host) deliverProbe(p *pkt.Packet) {
	if p.Flow.DstPort == ProbeEchoPort {
		*h.nextPktID++
		echo := &pkt.Packet{
			ID: *h.nextPktID, Kind: pkt.KindProbe, Flow: p.Flow.Reverse(),
			WireLen: 64, TTL: 64, Priority: p.Priority,
			SentAt: p.SentAt, // carry the original timestamp back
		}
		h.NIC.Send(echo)
		return
	}
	if p.Flow.DstPort == probeSrcPort && h.onProbeEcho != nil {
		h.onProbeEcho(p.Flow.SrcIP, h.sim.Now()-p.SentAt)
	}
}

// OnProbeEcho registers the probe-RTT callback.
func (h *Host) OnProbeEcho(fn func(peer uint32, rtt sim.Time)) { h.onProbeEcho = fn }

// send transmits a raw packet via the NIC.
func (h *Host) send(flow pkt.FlowKey, wireLen int, prio uint8, payload []byte) {
	*h.nextPktID++
	h.NIC.Send(&pkt.Packet{
		ID: *h.nextPktID, Kind: pkt.KindData, Flow: flow,
		WireLen: wireLen, TTL: 64, Priority: prio,
		SentAt: h.sim.Now(), Payload: payload,
	})
}

// SendUDP emits a burst of UDP packets for flow at the NIC's line rate.
func (h *Host) SendUDP(flow pkt.FlowKey, packets int, wireLen int, prio uint8) {
	for i := 0; i < packets; i++ {
		h.send(flow, wireLen, prio, nil)
	}
}

// ProbeEchoPort is the well-known probe responder port.
const ProbeEchoPort = 7

const probeSrcPort = 62000

// SendProbe emits one Pingmesh-style probe toward dst; the echo invokes
// the OnProbeEcho callback with the measured RTT.
func (h *Host) SendProbe(dst uint32) {
	*h.nextPktID++
	flow := pkt.FlowKey{SrcIP: h.Node.IP, DstIP: dst, SrcPort: probeSrcPort, DstPort: ProbeEchoPort, Proto: pkt.ProtoUDP}
	h.NIC.Send(&pkt.Packet{
		ID: *h.nextPktID, Kind: pkt.KindProbe, Flow: flow,
		WireLen: 64, TTL: 64, SentAt: h.sim.Now(),
	})
}

// String names the host.
func (h *Host) String() string { return fmt.Sprintf("host(%s)", h.Node.Name) }
