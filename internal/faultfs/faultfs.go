// Package faultfs is the storage-side twin of internal/faultconn: a
// minimal VFS over the handful of filesystem operations the collector's
// durability path performs (file create/write/sync/rename/remove plus
// directory fsync), with an os-backed passthrough default and a seeded,
// deterministic fault engine that scripts the disk failures that
// actually kill collectors in production — ENOSPC mid-ingest, EIO on
// the k-th fsync, short/torn writes, power cuts that drop un-fsynced
// bytes, and latent bit rot in sealed segments.
//
// The interface is deliberately tiny: it covers exactly what the WAL
// needs and nothing more, so the os-backed default adds no measurable
// overhead (one interface dispatch in front of a syscall) and the fault
// engine can model durability precisely. Injected errors wrap
// syscall.ENOSPC / syscall.EIO inside *os.PathError, so callers'
// errors.Is / os.IsNotExist classification behaves exactly as it would
// against a real dying disk.
package faultfs

import (
	"io"
	"os"
)

// File is the writable-file surface the WAL uses: sequential reads or
// writes plus fsync. *os.File satisfies it directly.
type File interface {
	io.Reader
	io.Writer
	io.Closer
	// Sync flushes the file's dirty bytes to stable storage. After a
	// Sync error the caller must assume the un-synced suffix is gone —
	// the kernel may have dropped the dirty pages — and fail stop; a
	// retried Sync that returns nil is NOT a durability promise.
	Sync() error
}

// FS is the filesystem surface the durability path runs on. Implementors
// must keep os semantics: Create is O_CREATE|O_EXCL|O_WRONLY (fails if
// the file exists), CreateTrunc is O_CREATE|O_TRUNC|O_WRONLY, Open is
// read-only, and SyncDir fsyncs a directory so creations, renames, and
// removals inside it survive a power cut.
type FS interface {
	MkdirAll(dir string, perm os.FileMode) error
	ReadDir(dir string) ([]os.DirEntry, error)
	// Create creates a new file exclusively (the WAL's fresh-segment
	// open: an existing file is an error, never silently appended to).
	Create(path string) (File, error)
	// CreateTrunc creates or truncates a file (the snapshot tmp open).
	CreateTrunc(path string) (File, error)
	// Open opens an existing file for reading.
	Open(path string) (File, error)
	Rename(from, to string) error
	Remove(path string) error
	Truncate(path string, size int64) error
	// SyncDir fsyncs the directory itself, making the directory
	// operations performed so far durable.
	SyncDir(dir string) error
}

// OS is the passthrough filesystem used in production: every method is
// a direct os call and File is a bare *os.File.
var OS FS = osFS{}

type osFS struct{}

func (osFS) MkdirAll(dir string, perm os.FileMode) error { return os.MkdirAll(dir, perm) }

func (osFS) ReadDir(dir string) ([]os.DirEntry, error) { return os.ReadDir(dir) }

func (osFS) Create(path string) (File, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (osFS) CreateTrunc(path string) (File, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (osFS) Open(path string) (File, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (osFS) Rename(from, to string) error { return os.Rename(from, to) }

func (osFS) Remove(path string) error { return os.Remove(path) }

func (osFS) Truncate(path string, size int64) error { return os.Truncate(path, size) }

func (osFS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
