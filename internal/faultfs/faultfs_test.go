package faultfs

import (
	"errors"
	"os"
	"path/filepath"
	"syscall"
	"testing"
)

func writeAll(t *testing.T, f File, p []byte) {
	t.Helper()
	if n, err := f.Write(p); err != nil || n != len(p) {
		t.Fatalf("write: n=%d err=%v", n, err)
	}
}

func readFile(t *testing.T, path string) []byte {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read %s: %v", path, err)
	}
	return b
}

func TestOSPassthrough(t *testing.T) {
	dir := t.TempDir()
	sub := filepath.Join(dir, "d")
	if err := OS.MkdirAll(sub, 0o755); err != nil {
		t.Fatalf("MkdirAll: %v", err)
	}
	path := filepath.Join(sub, "a")
	f, err := OS.Create(path)
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	writeAll(t, f, []byte("hello"))
	if err := f.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	if err := f.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if _, err := OS.Create(path); err == nil {
		t.Fatalf("Create on existing file must fail (O_EXCL)")
	}
	if err := OS.SyncDir(sub); err != nil {
		t.Fatalf("SyncDir: %v", err)
	}
	if err := OS.Truncate(path, 4); err != nil {
		t.Fatalf("Truncate: %v", err)
	}
	r, err := OS.Open(path)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	buf := make([]byte, 16)
	n, _ := r.Read(buf)
	r.Close()
	if string(buf[:n]) != "hell" {
		t.Fatalf("read back %q, want %q", buf[:n], "hell")
	}
	if err := OS.Rename(path, path+"2"); err != nil {
		t.Fatalf("Rename: %v", err)
	}
	ents, err := OS.ReadDir(sub)
	if err != nil || len(ents) != 1 || ents[0].Name() != "a2" {
		t.Fatalf("ReadDir: %v %v", ents, err)
	}
	tf, err := OS.CreateTrunc(path + "2")
	if err != nil {
		t.Fatalf("CreateTrunc: %v", err)
	}
	tf.Close()
	if b := readFile(t, path+"2"); len(b) != 0 {
		t.Fatalf("CreateTrunc left %d bytes", len(b))
	}
	if err := OS.Remove(path + "2"); err != nil {
		t.Fatalf("Remove: %v", err)
	}
	if _, err := OS.Open(path + "2"); !os.IsNotExist(err) {
		t.Fatalf("Open after Remove: %v", err)
	}
}

func TestWriteBudgetENOSPC(t *testing.T) {
	dir := t.TempDir()
	fs := NewFault(OS, Plan{Seed: 1, WriteBudget: 10})
	path := filepath.Join(dir, "a")
	f, err := fs.Create(path)
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	writeAll(t, f, []byte("12345678"))  // 8 of 10
	n, err := f.Write([]byte("abcdef")) // crosses the budget
	if !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("want ENOSPC, got %v", err)
	}
	if n != 2 {
		t.Fatalf("short write persisted %d bytes, want 2", n)
	}
	if n, err := f.Write([]byte("x")); n != 0 || !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("post-budget write: n=%d err=%v", n, err)
	}
	if got := readFile(t, path); string(got) != "12345678ab" {
		t.Fatalf("on-disk %q, want %q", got, "12345678ab")
	}
	if st := fs.Stats(); st.BytesWritten != 10 {
		t.Fatalf("BytesWritten=%d, want 10", st.BytesWritten)
	}
}

func TestFailSyncAtDropsUnsyncedAndStaysDropped(t *testing.T) {
	dir := t.TempDir()
	fs := NewFault(OS, Plan{Seed: 1, FailSyncAt: 2, DropOnSyncFail: true})
	path := filepath.Join(dir, "a")
	f, _ := fs.Create(path)
	writeAll(t, f, []byte("durable|"))
	if err := f.Sync(); err != nil {
		t.Fatalf("first sync: %v", err)
	}
	writeAll(t, f, []byte("doomed"))
	if err := f.Sync(); !errors.Is(err, syscall.EIO) {
		t.Fatalf("second sync: want EIO, got %v", err)
	}
	// The kernel dropped the dirty pages: the suffix is gone...
	if got := readFile(t, path); string(got) != "durable|" {
		t.Fatalf("after failed sync: %q, want %q", got, "durable|")
	}
	// ...and a later, "successful" fsync must not resurrect it — the
	// fsyncgate trap a fail-stop caller never hits.
	if err := f.Sync(); err != nil {
		t.Fatalf("third sync: %v", err)
	}
	if got := readFile(t, path); string(got) != "durable|" {
		t.Fatalf("after retried sync: %q, want %q", got, "durable|")
	}
	if st := fs.Stats(); st.Syncs != 3 {
		t.Fatalf("Syncs=%d, want 3", st.Syncs)
	}
}

func TestTornWriteDeterministic(t *testing.T) {
	tear := func(seed int64) (int, error) {
		dir := t.TempDir()
		fs := NewFault(OS, Plan{Seed: seed, TornWriteAt: 2})
		f, _ := fs.Create(filepath.Join(dir, "a"))
		writeAll(t, f, []byte("first"))
		n, err := f.Write([]byte("0123456789"))
		return n, err
	}
	n1, err1 := tear(7)
	n2, err2 := tear(7)
	if !errors.Is(err1, syscall.EIO) || !errors.Is(err2, syscall.EIO) {
		t.Fatalf("want EIO on torn write, got %v / %v", err1, err2)
	}
	if n1 != n2 {
		t.Fatalf("same seed, different tears: %d vs %d", n1, n2)
	}
	if n1 < 0 || n1 >= 10 {
		t.Fatalf("tear must be a strict prefix, got %d of 10", n1)
	}
}

func TestPowerCutDropsUnsyncedBytes(t *testing.T) {
	dir := t.TempDir()
	fs := NewFault(OS, Plan{Seed: 1})
	path := filepath.Join(dir, "a")
	f, _ := fs.Create(path)
	writeAll(t, f, []byte("synced"))
	if err := f.Sync(); err != nil {
		t.Fatalf("sync: %v", err)
	}
	fs.SyncDir(dir)
	writeAll(t, f, []byte("-unsynced"))
	fs.PowerCut()
	if got := readFile(t, path); string(got) != "synced" {
		t.Fatalf("after power cut: %q, want %q", got, "synced")
	}
	// The machine is off: everything fails.
	if _, err := f.Write([]byte("x")); !errors.Is(err, ErrPowerCut) {
		t.Fatalf("write after cut: %v", err)
	}
	if err := f.Sync(); !errors.Is(err, ErrPowerCut) {
		t.Fatalf("sync after cut: %v", err)
	}
	if err := f.Close(); !errors.Is(err, ErrPowerCut) {
		t.Fatalf("close after cut: %v", err)
	}
	if _, err := fs.Create(filepath.Join(dir, "b")); !errors.Is(err, ErrPowerCut) {
		t.Fatalf("create after cut: %v", err)
	}
	if _, err := fs.Open(path); !errors.Is(err, ErrPowerCut) {
		t.Fatalf("open after cut: %v", err)
	}
	if _, err := fs.ReadDir(dir); !errors.Is(err, ErrPowerCut) {
		t.Fatalf("readdir after cut: %v", err)
	}
	if err := fs.Rename(path, path+"2"); !errors.Is(err, ErrPowerCut) {
		t.Fatalf("rename after cut: %v", err)
	}
	if err := fs.Remove(path); !errors.Is(err, ErrPowerCut) {
		t.Fatalf("remove after cut: %v", err)
	}
	if err := fs.SyncDir(dir); !errors.Is(err, ErrPowerCut) {
		t.Fatalf("syncdir after cut: %v", err)
	}
	fs.PowerCut() // idempotent
	if !fs.Stats().Halted {
		t.Fatalf("Stats.Halted false after PowerCut")
	}
}

func TestPowerCutUndoesPendingDirOps(t *testing.T) {
	dir := t.TempDir()
	fs := NewFault(OS, Plan{Seed: 1})

	// durable: created, written, fsynced, dir-fsynced.
	durable := filepath.Join(dir, "durable")
	f, _ := fs.Create(durable)
	writeAll(t, f, []byte("keep"))
	f.Sync()
	f.Close()
	if err := fs.SyncDir(dir); err != nil {
		t.Fatalf("syncdir: %v", err)
	}

	victim := filepath.Join(dir, "victim")
	vf, _ := fs.Create(victim)
	writeAll(t, vf, []byte("back"))
	vf.Sync()
	vf.Close()
	if err := fs.SyncDir(dir); err != nil { // victim durable too
		t.Fatalf("syncdir: %v", err)
	}

	// pending create: never dir-fsynced — a power cut unlinks it.
	limbo := filepath.Join(dir, "limbo")
	lf, _ := fs.Create(limbo)
	writeAll(t, lf, []byte("gone"))
	lf.Sync() // file fsync alone does not persist the directory entry
	lf.Close()

	// pending rename: reverts to the old name.
	if err := fs.Rename(durable, durable+".new"); err != nil {
		t.Fatalf("rename: %v", err)
	}
	// pending remove: the file comes back.
	if err := fs.Remove(victim); err != nil {
		t.Fatalf("remove: %v", err)
	}
	// Removed-but-not-dir-synced files are hidden from ReadDir...
	ents, err := fs.ReadDir(dir)
	if err != nil {
		t.Fatalf("readdir: %v", err)
	}
	for _, e := range ents {
		if e.Name() == "victim" || e.Name() != filepath.Base(e.Name()) {
			t.Fatalf("removed file still listed: %v", e.Name())
		}
	}

	fs.PowerCut()

	if _, err := os.Stat(limbo); !os.IsNotExist(err) {
		t.Fatalf("pending create survived the cut: %v", err)
	}
	if _, err := os.Stat(durable + ".new"); !os.IsNotExist(err) {
		t.Fatalf("pending rename survived the cut")
	}
	if got := readFile(t, durable); string(got) != "keep" {
		t.Fatalf("reverted rename content %q", got)
	}
	if got := readFile(t, victim); string(got) != "back" {
		t.Fatalf("pending remove not undone: %q", got)
	}
}

func TestSyncDirRetiresRemovals(t *testing.T) {
	dir := t.TempDir()
	fs := NewFault(OS, Plan{Seed: 1})
	path := filepath.Join(dir, "a")
	f, _ := fs.Create(path)
	f.Sync()
	f.Close()
	fs.SyncDir(dir)
	if err := fs.Remove(path); err != nil {
		t.Fatalf("remove: %v", err)
	}
	if err := fs.SyncDir(dir); err != nil {
		t.Fatalf("syncdir: %v", err)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("os.ReadDir: %v", err)
	}
	if len(ents) != 0 {
		t.Fatalf("dir not empty after durable remove: %v", ents)
	}
	// Now durable: a power cut must NOT resurrect it.
	fs.PowerCut()
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("durably removed file came back: %v", err)
	}
}

func TestPowerCutTearKeepsPartialSuffix(t *testing.T) {
	run := func(seed int64) int64 {
		dir := t.TempDir()
		fs := NewFault(OS, Plan{Seed: seed, TearOnPowerCut: true})
		path := filepath.Join(dir, "a")
		f, _ := fs.Create(path)
		writeAll(t, f, []byte("0123"))
		f.Sync()
		fs.SyncDir(dir)
		writeAll(t, f, []byte("456789abcdef"))
		fs.PowerCut()
		info, err := os.Stat(path)
		if err != nil {
			t.Fatalf("stat: %v", err)
		}
		return info.Size()
	}
	s1, s2 := run(42), run(42)
	if s1 != s2 {
		t.Fatalf("same seed, different tear: %d vs %d", s1, s2)
	}
	if s1 < 4 || s1 > 16 {
		t.Fatalf("tear outside [durable, written]: %d", s1)
	}
}

func TestFaultTruncateTracksState(t *testing.T) {
	dir := t.TempDir()
	fs := NewFault(OS, Plan{Seed: 1})
	path := filepath.Join(dir, "a")
	f, _ := fs.Create(path)
	writeAll(t, f, []byte("0123456789"))
	f.Sync()
	fs.SyncDir(dir)
	if err := fs.Truncate(path, 4); err != nil {
		t.Fatalf("truncate: %v", err)
	}
	writeAll(t, f, []byte("zz")) // durable mark stays at the truncation point
	fs.PowerCut()
	info, err := os.Stat(path)
	if err != nil {
		t.Fatalf("stat: %v", err)
	}
	if info.Size() != 4 {
		t.Fatalf("power cut kept %d bytes, want the 4 durable ones", info.Size())
	}
}

func TestFlipByte(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "a")
	if err := os.WriteFile(path, []byte("abcdef"), 0o644); err != nil {
		t.Fatalf("write: %v", err)
	}
	if err := FlipByte(path, 2); err != nil {
		t.Fatalf("flip: %v", err)
	}
	got := readFile(t, path)
	if got[2] == 'c' {
		t.Fatalf("byte 2 not flipped")
	}
	if err := FlipByte(path, 2); err != nil { // involution
		t.Fatalf("flip back: %v", err)
	}
	if string(readFile(t, path)) != "abcdef" {
		t.Fatalf("double flip is not identity: %q", readFile(t, path))
	}
	if err := FlipByte(path, -1); err != nil {
		t.Fatalf("flip last: %v", err)
	}
	if got := readFile(t, path); got[5] == 'f' {
		t.Fatalf("negative offset did not hit last byte: %q", got)
	}
	if err := FlipByte(filepath.Join(dir, "missing"), 0); !os.IsNotExist(err) {
		t.Fatalf("flip missing: %v", err)
	}
}
