package faultfs

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"syscall"
)

// ErrPowerCut is the error every operation returns after PowerCut: the
// machine is off, the filesystem is gone. It is wrapped in *os.PathError
// like every other injected fault.
var ErrPowerCut = errors.New("faultfs: power cut")

// Plan scripts a deterministic fault schedule. Zero fields inject
// nothing; all counters are global across the filesystem (not per file)
// and 1-based, so FailSyncAt: 3 fails the third fsync issued anywhere.
type Plan struct {
	// Seed drives every random draw (torn-write lengths, power-cut tear
	// points). Equal seeds and equal operation sequences replay the
	// exact same fault schedule.
	Seed int64
	// WriteBudget is the total number of bytes the disk will accept
	// before ENOSPC (0 = unlimited). The write that crosses the budget
	// persists only the prefix that fit — the classic short write a
	// full disk produces — and returns ENOSPC.
	WriteBudget int64
	// FailSyncAt fails the k-th file fsync with EIO (0 = never). Later
	// fsyncs succeed again: a log that retries instead of failing stop
	// would re-report lost bytes durable, which is exactly the
	// fsyncgate trap the WAL must not fall into.
	FailSyncAt uint64
	// DropOnSyncFail models the kernel discarding dirty pages on the
	// failed fsync: the file's un-synced suffix is truncated away at
	// the moment FailSyncAt fires.
	DropOnSyncFail bool
	// TornWriteAt makes the k-th write a torn write (0 = never): a
	// seeded strict prefix of the buffer persists and the write
	// returns EIO.
	TornWriteAt uint64
	// TearOnPowerCut keeps a seeded prefix of each file's un-fsynced
	// suffix at PowerCut instead of dropping it entirely — the torn
	// tail a real power cut leaves mid-sector.
	TearOnPowerCut bool
}

// Stats counts what the fault filesystem has seen.
type Stats struct {
	Writes       uint64
	Syncs        uint64
	BytesWritten int64
	Halted       bool
}

// trashMark tags limbo names for files removed before their directory
// fsync; ReadDir hides them and PowerCut restores them.
const trashMark = ".trash-"

type opKind int

const (
	opCreate opKind = iota
	opRename
	opRemove
)

// dirOp is one directory operation not yet made durable by SyncDir.
// PowerCut undoes pending ops newest-first.
type dirOp struct {
	kind     opKind
	dir      string
	path     string // opCreate: path at creation; opRemove: removed path
	from, to string // opRename
	trash    string // opRemove: limbo name holding the bytes
}

// fileState tracks written-vs-durable lengths for files opened through
// the fault filesystem. Files that predate the Fault (or were opened
// read-only) are untracked and treated as fully durable.
type fileState struct {
	written int64
	durable int64
}

// Fault wraps an FS (normally OS) and injects the scripted Plan. It
// tracks, per file, how many bytes the last successful fsync covered,
// and journals directory operations until the owning directory is
// fsynced — so PowerCut can roll the filesystem back to exactly what a
// real power cut would have preserved.
//
// Intended for tests: operations serialize on one mutex, and helpers
// like PowerCut reach through to the underlying os paths, so the inner
// FS should be OS (or something path-compatible with it).
type Fault struct {
	inner FS
	plan  Plan

	mu       sync.Mutex
	rng      *rand.Rand
	writes   uint64
	syncs    uint64
	bytes    int64
	halted   bool
	trashSeq int
	files    map[string]*fileState
	journal  []dirOp
}

// NewFault wraps inner with the scripted plan.
func NewFault(inner FS, plan Plan) *Fault {
	return &Fault{
		inner: inner,
		plan:  plan,
		rng:   rand.New(rand.NewSource(plan.Seed)),
		files: make(map[string]*fileState),
	}
}

func pathErr(op, path string, err error) error {
	return &os.PathError{Op: op, Path: path, Err: err}
}

// Stats snapshots the fault filesystem's counters.
func (fs *Fault) Stats() Stats {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return Stats{Writes: fs.writes, Syncs: fs.syncs, BytesWritten: fs.bytes, Halted: fs.halted}
}

func (fs *Fault) MkdirAll(dir string, perm os.FileMode) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.halted {
		return pathErr("mkdir", dir, ErrPowerCut)
	}
	return fs.inner.MkdirAll(dir, perm)
}

func (fs *Fault) ReadDir(dir string) ([]os.DirEntry, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.halted {
		return nil, pathErr("readdir", dir, ErrPowerCut)
	}
	entries, err := fs.inner.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	kept := entries[:0]
	for _, e := range entries {
		if strings.Contains(e.Name(), trashMark) {
			continue // removed, pending the directory fsync
		}
		kept = append(kept, e)
	}
	return kept, nil
}

func (fs *Fault) Create(path string) (File, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.halted {
		return nil, pathErr("create", path, ErrPowerCut)
	}
	f, err := fs.inner.Create(path)
	if err != nil {
		return nil, err
	}
	fs.files[path] = &fileState{}
	fs.journal = append(fs.journal, dirOp{kind: opCreate, dir: filepath.Dir(path), path: path})
	return &faultFile{fs: fs, path: path, inner: f}, nil
}

func (fs *Fault) CreateTrunc(path string) (File, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.halted {
		return nil, pathErr("create", path, ErrPowerCut)
	}
	f, err := fs.inner.CreateTrunc(path)
	if err != nil {
		return nil, err
	}
	if _, known := fs.files[path]; !known {
		fs.journal = append(fs.journal, dirOp{kind: opCreate, dir: filepath.Dir(path), path: path})
	}
	fs.files[path] = &fileState{}
	return &faultFile{fs: fs, path: path, inner: f}, nil
}

func (fs *Fault) Open(path string) (File, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.halted {
		return nil, pathErr("open", path, ErrPowerCut)
	}
	return fs.inner.Open(path)
}

func (fs *Fault) Rename(from, to string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.halted {
		return pathErr("rename", from, ErrPowerCut)
	}
	if err := fs.inner.Rename(from, to); err != nil {
		return err
	}
	if st, ok := fs.files[from]; ok {
		delete(fs.files, from)
		fs.files[to] = st
	}
	fs.journal = append(fs.journal, dirOp{kind: opRename, dir: filepath.Dir(to), from: from, to: to})
	return nil
}

func (fs *Fault) Remove(path string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.halted {
		return pathErr("remove", path, ErrPowerCut)
	}
	// Park the bytes under a limbo name instead of unlinking: until the
	// directory fsync the removal is not durable, and PowerCut must be
	// able to bring the file back.
	fs.trashSeq++
	trash := fmt.Sprintf("%s%s%d", path, trashMark, fs.trashSeq)
	if err := fs.inner.Rename(path, trash); err != nil {
		return err
	}
	if st, ok := fs.files[path]; ok {
		delete(fs.files, path)
		fs.files[trash] = st
	}
	fs.journal = append(fs.journal, dirOp{kind: opRemove, dir: filepath.Dir(path), path: path, trash: trash})
	return nil
}

func (fs *Fault) Truncate(path string, size int64) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.halted {
		return pathErr("truncate", path, ErrPowerCut)
	}
	if err := fs.inner.Truncate(path, size); err != nil {
		return err
	}
	if st, ok := fs.files[path]; ok {
		if st.written > size {
			st.written = size
		}
		if st.durable > size {
			st.durable = size
		}
	}
	return nil
}

func (fs *Fault) SyncDir(dir string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.halted {
		return pathErr("syncdir", dir, ErrPowerCut)
	}
	if err := fs.inner.SyncDir(dir); err != nil {
		return err
	}
	// Directory ops in dir are now durable: retire their journal
	// entries and let parked removals actually unlink.
	kept := fs.journal[:0]
	for _, op := range fs.journal {
		if op.dir != dir {
			kept = append(kept, op)
			continue
		}
		if op.kind == opRemove {
			fs.inner.Remove(op.trash)
			delete(fs.files, op.trash)
		}
	}
	fs.journal = kept
	return nil
}

// PowerCut halts the filesystem — every later operation fails with
// ErrPowerCut — and rolls stored state back to what stable storage
// held: pending directory ops are undone newest-first (creations
// vanish, renames revert, removals reappear) and each surviving tracked
// file is truncated to its last-fsynced length (plus a seeded partial
// tail when Plan.TearOnPowerCut is set). Reopen the directory with a
// fresh FS to model the machine booting back up.
func (fs *Fault) PowerCut() {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.halted {
		return
	}
	fs.halted = true
	for i := len(fs.journal) - 1; i >= 0; i-- {
		op := fs.journal[i]
		switch op.kind {
		case opRename:
			fs.inner.Rename(op.to, op.from)
			if st, ok := fs.files[op.to]; ok {
				delete(fs.files, op.to)
				fs.files[op.from] = st
			}
		case opRemove:
			fs.inner.Rename(op.trash, op.path)
			if st, ok := fs.files[op.trash]; ok {
				delete(fs.files, op.trash)
				fs.files[op.path] = st
			}
		case opCreate:
			fs.inner.Remove(op.path)
			delete(fs.files, op.path)
		}
	}
	fs.journal = nil
	paths := make([]string, 0, len(fs.files))
	for path := range fs.files {
		paths = append(paths, path)
	}
	sort.Strings(paths) // deterministic tear draws
	for _, path := range paths {
		st := fs.files[path]
		keep := st.durable
		if fs.plan.TearOnPowerCut && st.written > st.durable {
			keep += fs.rng.Int63n(st.written - st.durable + 1)
		}
		if keep < st.written {
			fs.inner.Truncate(path, keep)
			st.written = keep
		}
	}
}

// faultFile is a tracked writable file.
type faultFile struct {
	fs    *Fault
	path  string
	inner File
}

func (f *faultFile) Read(p []byte) (int, error) { return f.inner.Read(p) }

func (f *faultFile) Write(p []byte) (int, error) {
	fs := f.fs
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.halted {
		return 0, pathErr("write", f.path, ErrPowerCut)
	}
	fs.writes++
	allowed := len(p)
	var werr error
	if fs.plan.TornWriteAt != 0 && fs.writes == fs.plan.TornWriteAt {
		// Torn write: a strict prefix lands, then the device errors.
		allowed = 0
		if len(p) > 0 {
			allowed = fs.rng.Intn(len(p))
		}
		werr = pathErr("write", f.path, syscall.EIO)
	} else if fs.plan.WriteBudget > 0 {
		remaining := fs.plan.WriteBudget - fs.bytes
		if remaining < 0 {
			remaining = 0
		}
		if remaining < int64(len(p)) {
			allowed = int(remaining)
			werr = pathErr("write", f.path, syscall.ENOSPC)
		}
	}
	n := 0
	if allowed > 0 {
		var ierr error
		n, ierr = f.inner.Write(p[:allowed])
		if werr == nil {
			werr = ierr
		}
	}
	fs.bytes += int64(n)
	if st, ok := fs.files[f.path]; ok {
		st.written += int64(n)
	}
	if werr == nil && n < len(p) {
		werr = pathErr("write", f.path, syscall.EIO)
	}
	return n, werr
}

func (f *faultFile) Sync() error {
	fs := f.fs
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.halted {
		return pathErr("sync", f.path, ErrPowerCut)
	}
	fs.syncs++
	st := fs.files[f.path]
	if fs.plan.FailSyncAt != 0 && fs.syncs == fs.plan.FailSyncAt {
		if fs.plan.DropOnSyncFail && st != nil && st.written > st.durable {
			// The kernel dropped the dirty pages: the un-synced suffix
			// is gone, and a later fsync succeeding must not bring it
			// back. Fail-stop callers never find out the hard way.
			fs.inner.Truncate(f.path, st.durable)
			st.written = st.durable
		}
		return pathErr("sync", f.path, syscall.EIO)
	}
	if err := f.inner.Sync(); err != nil {
		return err
	}
	if st != nil {
		st.durable = st.written
	}
	return nil
}

func (f *faultFile) Close() error {
	fs := f.fs
	fs.mu.Lock()
	halted := fs.halted
	fs.mu.Unlock()
	if halted {
		return pathErr("close", f.path, ErrPowerCut)
	}
	return f.inner.Close()
}

// FlipByte simulates bit rot: it XORs the byte at offset off in path
// with 0xFF, in place, bypassing any fault plan. A negative off counts
// back from the end of the file (-1 is the last byte).
func FlipByte(path string, off int64) error {
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return err
	}
	defer f.Close()
	if off < 0 {
		info, err := f.Stat()
		if err != nil {
			return err
		}
		off += info.Size()
	}
	var b [1]byte
	if _, err := f.ReadAt(b[:], off); err != nil {
		return err
	}
	b[0] ^= 0xFF
	if _, err := f.WriteAt(b[:], off); err != nil {
		return err
	}
	return nil
}
