// Package pcap writes simulated traffic as standard libpcap capture
// files, so any run of the simulator can be inspected in Wireshark or
// tcpdump. Frames are produced by the byte-accurate codecs in
// internal/pkt (including the NetSeer packet-ID tag, which dissectors
// show as an unknown EtherType payload), and timestamps are the
// simulation's virtual clock.
package pcap

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"netseer/internal/pkt"
	"netseer/internal/sim"
)

// Magic number for microsecond-resolution little-endian pcap.
const magicMicros = 0xa1b2c3d4

// LinkTypeEthernet is the DLT_EN10MB link type.
const LinkTypeEthernet = 1

// Writer emits a pcap stream.
type Writer struct {
	w       *bufio.Writer
	closer  io.Closer
	scratch []byte
	frames  uint64
	// SnapLen caps stored frame bytes (default 65535).
	SnapLen uint32
}

// NewWriter writes the pcap global header to w and returns a Writer. If
// w is also an io.Closer, Close will close it.
func NewWriter(w io.Writer) (*Writer, error) {
	pw := &Writer{w: bufio.NewWriterSize(w, 64<<10), SnapLen: 65535}
	if c, ok := w.(io.Closer); ok {
		pw.closer = c
	}
	var hdr [24]byte
	binary.LittleEndian.PutUint32(hdr[0:4], magicMicros)
	binary.LittleEndian.PutUint16(hdr[4:6], 2) // version major
	binary.LittleEndian.PutUint16(hdr[6:8], 4) // version minor
	// thiszone, sigfigs = 0.
	binary.LittleEndian.PutUint32(hdr[16:20], pw.SnapLen)
	binary.LittleEndian.PutUint32(hdr[20:24], LinkTypeEthernet)
	if _, err := pw.w.Write(hdr[:]); err != nil {
		return nil, err
	}
	return pw, nil
}

// WriteFrame writes one raw Ethernet frame with the given virtual-time
// timestamp.
func (pw *Writer) WriteFrame(at sim.Time, frame []byte) error {
	capLen := uint32(len(frame))
	if capLen > pw.SnapLen {
		capLen = pw.SnapLen
	}
	var hdr [16]byte
	usec := uint64(at) / 1000
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(usec/1e6))
	binary.LittleEndian.PutUint32(hdr[4:8], uint32(usec%1e6))
	binary.LittleEndian.PutUint32(hdr[8:12], capLen)
	binary.LittleEndian.PutUint32(hdr[12:16], uint32(len(frame)))
	if _, err := pw.w.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := pw.w.Write(frame[:capLen]); err != nil {
		return err
	}
	pw.frames++
	return nil
}

// WritePacket serializes a simulator data packet to its on-wire form and
// writes it.
func (pw *Writer) WritePacket(at sim.Time, p *pkt.Packet) error {
	pw.scratch = pkt.MarshalDataFrame(p, pw.scratch[:0])
	return pw.WriteFrame(at, pw.scratch)
}

// Frames returns the number of frames written.
func (pw *Writer) Frames() uint64 { return pw.frames }

// Close flushes (and closes the underlying writer if it is a Closer).
func (pw *Writer) Close() error {
	if err := pw.w.Flush(); err != nil {
		return err
	}
	if pw.closer != nil {
		return pw.closer.Close()
	}
	return nil
}

// Reader parses pcap files produced by Writer (round-trip testing and
// offline analysis).
type Reader struct {
	r       *bufio.Reader
	snapLen uint32
}

// NewReader validates the global header.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReaderSize(r, 64<<10)
	var hdr [24]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, err
	}
	if got := binary.LittleEndian.Uint32(hdr[0:4]); got != magicMicros {
		return nil, fmt.Errorf("pcap: bad magic %#x", got)
	}
	if lt := binary.LittleEndian.Uint32(hdr[20:24]); lt != LinkTypeEthernet {
		return nil, fmt.Errorf("pcap: unsupported link type %d", lt)
	}
	return &Reader{r: br, snapLen: binary.LittleEndian.Uint32(hdr[16:20])}, nil
}

// Next returns the next frame and its timestamp, or io.EOF.
func (pr *Reader) Next() (at sim.Time, frame []byte, err error) {
	var hdr [16]byte
	if _, err := io.ReadFull(pr.r, hdr[:]); err != nil {
		return 0, nil, err
	}
	sec := binary.LittleEndian.Uint32(hdr[0:4])
	usec := binary.LittleEndian.Uint32(hdr[4:8])
	capLen := binary.LittleEndian.Uint32(hdr[8:12])
	if capLen > pr.snapLen {
		return 0, nil, fmt.Errorf("pcap: frame of %d bytes exceeds snaplen", capLen)
	}
	frame = make([]byte, capLen)
	if _, err := io.ReadFull(pr.r, frame); err != nil {
		return 0, nil, err
	}
	return sim.Time(sec)*sim.Second + sim.Time(usec)*sim.Microsecond, frame, nil
}

// Tap attaches to a dataplane monitor hook and captures every packet it
// sees; see baselines for the Monitor interface shape. It implements the
// minimal subset via a function adapter so any hook site can feed it.
type Tap struct {
	W *Writer
	// Clock supplies virtual time.
	Clock func() sim.Time
	Err   error
}

// Capture writes one packet, remembering the first error.
func (t *Tap) Capture(p *pkt.Packet) {
	if t.Err != nil || p.Kind != pkt.KindData {
		return
	}
	t.Err = t.W.WritePacket(t.Clock(), p)
}
