package pcap

import (
	"bytes"
	"io"
	"testing"

	"netseer/internal/pkt"
	"netseer/internal/sim"
)

func samplePacket(sp uint16) *pkt.Packet {
	return &pkt.Packet{
		Kind: pkt.KindData,
		Flow: pkt.FlowKey{SrcIP: pkt.IP(10, 0, 0, 1), DstIP: pkt.IP(10, 0, 1, 2),
			SrcPort: sp, DstPort: 80, Proto: pkt.ProtoTCP},
		WireLen: 300, TTL: 62, SeqTag: 77, HasSeqTag: true,
	}
}

func TestRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	times := []sim.Time{0, 1500 * sim.Microsecond, 3 * sim.Second}
	for i, at := range times {
		if err := w.WritePacket(at, samplePacket(uint16(1000+i))); err != nil {
			t.Fatal(err)
		}
	}
	if w.Frames() != 3 {
		t.Errorf("Frames = %d", w.Frames())
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range times {
		at, frame, err := r.Next()
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		// Microsecond resolution truncates.
		if at/sim.Microsecond != want/sim.Microsecond {
			t.Errorf("frame %d at %v, want %v", i, at, want)
		}
		var p pkt.Packet
		if err := pkt.UnmarshalDataFrame(frame, &p); err != nil {
			t.Fatalf("frame %d does not decode: %v", i, err)
		}
		if p.Flow.SrcPort != uint16(1000+i) || !p.HasSeqTag || p.SeqTag != 77 {
			t.Errorf("frame %d decoded wrong: %+v", i, p)
		}
	}
	if _, _, err := r.Next(); err != io.EOF {
		t.Errorf("expected EOF, got %v", err)
	}
}

func TestGlobalHeaderShape(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	w.Close()
	b := buf.Bytes()
	if len(b) != 24 {
		t.Fatalf("header length %d", len(b))
	}
	if b[0] != 0xd4 || b[1] != 0xc3 || b[2] != 0xb2 || b[3] != 0xa1 {
		t.Errorf("magic bytes %x", b[:4])
	}
	if b[20] != 1 { // DLT_EN10MB little-endian
		t.Errorf("link type byte %d", b[20])
	}
}

func TestSnapLenTruncation(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	w.SnapLen = 64
	p := samplePacket(1)
	p.WireLen = 1500
	if err := w.WritePacket(10*sim.Microsecond, p); err != nil {
		t.Fatal(err)
	}
	w.Close()
	r, _ := NewReader(bytes.NewReader(buf.Bytes()))
	// SnapLen was reduced after the header was written; the reader
	// validates against the header's snaplen (65535), so the 64-byte
	// capture still reads fine with origLen preserved.
	_, frame, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	if len(frame) != 64 {
		t.Errorf("captured %d bytes, want 64", len(frame))
	}
}

func TestReaderRejectsGarbage(t *testing.T) {
	if _, err := NewReader(bytes.NewReader([]byte("not a pcap file at all....."))); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := NewReader(bytes.NewReader(nil)); err == nil {
		t.Error("empty input accepted")
	}
}

func TestTapCapturesDataOnly(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	now := sim.Time(0)
	tap := &Tap{W: w, Clock: func() sim.Time { return now }}
	tap.Capture(samplePacket(1))
	tap.Capture(&pkt.Packet{Kind: pkt.KindPFC, WireLen: 64})
	tap.Capture(&pkt.Packet{Kind: pkt.KindLossNotify, WireLen: 64})
	if tap.Err != nil {
		t.Fatal(tap.Err)
	}
	if w.Frames() != 1 {
		t.Errorf("captured %d frames, want 1 (data only)", w.Frames())
	}
}
