package sketch

import (
	"testing"

	"netseer/internal/fevent"
	"netseer/internal/pkt"
	"netseer/internal/sim"
)

// Burst-boundary twins: OfferBurst must be byte-identical to the
// sequential per-packet Offer path — same events in the same order with
// the same fields, same stats, same sketch state (the pattern of
// fpelim's burst twin tests).

// twinOp is one offered packet: a flow index, ports, and a timestamp.
type twinOp struct {
	flow    int
	in, out int32
	at      sim.Time
}

// runTwins feeds ops to a burst stage (grouping consecutive same-timestamp
// ops into bursts, as the pipeline does) and to a sequential stage, then
// compares everything observable.
func runTwins(t *testing.T, cfg Config, ports int, ops []twinOp) {
	t.Helper()
	var burstEvents, seqEvents []fevent.Event
	sb := NewStage(cfg, ports, func(e *fevent.Event) { burstEvents = append(burstEvents, *e) })
	ss := NewStage(cfg, ports, func(e *fevent.Event) { seqEvents = append(seqEvents, *e) })

	pkts := make([]pkt.Packet, len(ops))
	for i, op := range ops {
		pkts[i] = pkt.Packet{Flow: randFlow(op.flow), WireLen: 724}
	}

	for i := 0; i < len(ops); {
		j := i
		var slots []pkt.Slot
		for j < len(ops) && ops[j].at == ops[i].at {
			slots = append(slots, pkt.Slot{P: &pkts[j], Port: ops[j].in, A: ops[j].out})
			j++
		}
		sb.OfferBurst(slots, ops[i].at)
		i = j
	}
	for i, op := range ops {
		ss.Offer(&pkts[i], op.in, op.out, op.at)
	}
	sb.Flush(ops[len(ops)-1].at)
	ss.Flush(ops[len(ops)-1].at)

	if len(burstEvents) != len(seqEvents) {
		t.Fatalf("burst emitted %d events, sequential %d", len(burstEvents), len(seqEvents))
	}
	for i := range burstEvents {
		if burstEvents[i] != seqEvents[i] {
			t.Fatalf("event %d diverges:\n burst: %+v\n   seq: %+v", i, burstEvents[i], seqEvents[i])
		}
	}
	if sb.Stats() != ss.Stats() {
		t.Fatalf("stats diverge: burst %+v vs sequential %+v", sb.Stats(), ss.Stats())
	}
	for f := 0; f < 64; f++ {
		h := randFlow(f).Hash()
		if sb.CMSEstimate(h) != ss.CMSEstimate(h) {
			t.Fatalf("CMS estimates diverge for flow %d: %d vs %d", f, sb.CMSEstimate(h), ss.CMSEstimate(h))
		}
	}
	tb, ts := sb.TopKTable(), ss.TopKTable()
	if tb.Len() != ts.Len() || tb.Total() != ts.Total() {
		t.Fatalf("top-K tables diverge: len %d/%d total %d/%d", tb.Len(), ts.Len(), tb.Total(), ts.Total())
	}
	for i := 0; i < tb.Len(); i++ {
		bf, bc, be := tb.Entry(i)
		sf, sc, se := ts.Entry(i)
		if bf != sf || bc != sc || be != se {
			t.Fatalf("top-K entry %d diverges: (%v,%d,%d) vs (%v,%d,%d)", i, bf, bc, be, sf, sc, se)
		}
	}
}

func TestOfferBurstMatchesSequentialOffer(t *testing.T) {
	w := 250 * sim.Microsecond
	cfg := Config{TopK: 4, HHThresholdPkts: 8, ChurnMin: 1, SpikeBytes: 4 << 10, Window: w}

	cases := map[string]func() []twinOp{
		"empty": func() []twinOp { return []twinOp{{flow: 0, out: 0, at: 1}} },
		"single heavy flow crosses threshold": func() []twinOp {
			var ops []twinOp
			for i := 0; i < 20; i++ {
				ops = append(ops, twinOp{flow: 1, in: 2, out: 3, at: sim.Time(i * 1000)})
			}
			return ops
		},
		"burst spans topk eviction": func() []twinOp {
			// Fill the K=4 table, then a burst of fresh flows forces
			// evictions mid-burst.
			var ops []twinOp
			for f := 0; f < 4; f++ {
				for i := 0; i < 3; i++ {
					ops = append(ops, twinOp{flow: f, out: 1, at: 5})
				}
			}
			for f := 10; f < 18; f++ {
				ops = append(ops, twinOp{flow: f, out: 1, at: 5})
			}
			return ops
		},
		"burst spans window roll": func() []twinOp {
			var ops []twinOp
			for i := 0; i < 30; i++ {
				ops = append(ops, twinOp{flow: i % 3, out: 2, at: sim.Time(i) * w / 10})
			}
			return ops
		},
		"seeded mixed traffic": func() []twinOp {
			rng := sim.NewStream(11, "twin")
			var ops []twinOp
			at := sim.Time(0)
			for i := 0; i < 800; i++ {
				if rng.Bool(0.3) {
					at += sim.Time(rng.Intn(int(w / 4)))
				}
				ops = append(ops, twinOp{
					flow: rng.Intn(24),
					in:   int32(rng.Intn(4)),
					out:  int32(rng.Intn(4)),
					at:   at,
				})
			}
			return ops
		},
	}
	for name, build := range cases {
		t.Run(name, func(t *testing.T) { runTwins(t, cfg, 4, build()) })
	}
}

func TestOfferBurstEmptySlice(t *testing.T) {
	s := NewStage(Config{}, 2, func(*fevent.Event) { t.Fatal("event from empty burst") })
	s.OfferBurst(nil, 5)
	s.OfferBurst([]pkt.Slot{}, 5)
	if s.Stats().Pkts != 0 {
		t.Fatalf("empty bursts counted packets: %+v", s.Stats())
	}
}

func TestFlushIdempotent(t *testing.T) {
	var events []fevent.Event
	cfg := Config{TopK: 4, HHThresholdPkts: 4, ChurnMin: 1, SpikeBytes: 1 << 10}
	s := NewStage(cfg, 2, func(e *fevent.Event) { events = append(events, *e) })
	p := pkt.Packet{Flow: randFlow(1), WireLen: 1400}
	for i := 0; i < 8; i++ {
		s.Offer(&p, 0, 1, sim.Time(i*100))
	}
	s.Flush(1000)
	n := len(events)
	if n == 0 {
		t.Fatal("first flush emitted nothing")
	}
	// A second flush with no traffic re-emits only the (unchanged) top-K
	// snapshot — identical events the CPU eliminator suppresses — and no
	// new spikes.
	spikes := s.Stats().Spikes
	s.Flush(1000)
	if s.Stats().Spikes != spikes {
		t.Fatalf("quiescent flush emitted new spikes: %+v", s.Stats())
	}
	for _, e := range events[n:] {
		if e.Type != fevent.TypeTopKChurn {
			t.Fatalf("quiescent flush emitted non-snapshot event: %+v", e)
		}
	}
}

func TestResetClearsState(t *testing.T) {
	var events int
	cfg := Config{TopK: 2, HHThresholdPkts: 2, ChurnMin: 1, SpikeBytes: 1 << 10}
	s := NewStage(cfg, 2, func(*fevent.Event) { events++ })
	p := pkt.Packet{Flow: randFlow(1), WireLen: 1400}
	for i := 0; i < 4; i++ {
		s.Offer(&p, 0, 1, sim.Time(i))
	}
	s.Reset()
	if s.Stats() != (Stats{}) {
		t.Fatalf("stats survived reset: %+v", s.Stats())
	}
	if s.CMSEstimate(p.Flow.Hash()) != 0 || s.TopKTable().Len() != 0 {
		t.Fatal("sketch state survived reset")
	}
	if s.MemoryBytes() <= 0 {
		t.Fatal("MemoryBytes not positive")
	}
}
