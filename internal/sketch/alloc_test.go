package sketch

import (
	"testing"

	"netseer/internal/fevent"
	"netseer/internal/pkt"
	"netseer/internal/sim"
)

// Zero-allocation pins: the sketch stage runs inside the per-packet
// pipeline, so every steady-state entry point must allocate nothing —
// events are emitted through the reused scratch record, tables are
// fixed-size arrays. The hotpath/sketch_* benchdiff gate enforces the
// same property release-over-release; these pins catch it at test time.

func TestOfferAllocFree(t *testing.T) {
	s := NewStage(Config{TopK: 8, HHThresholdPkts: 4, ChurnMin: 1, SpikeBytes: 1 << 10},
		4, func(*fevent.Event) {})
	pkts := make([]pkt.Packet, 32)
	for i := range pkts {
		pkts[i] = pkt.Packet{Flow: randFlow(i), WireLen: 724}
	}
	now := sim.Time(0)
	if avg := testing.AllocsPerRun(200, func() {
		now += 100
		for i := range pkts {
			s.Offer(&pkts[i], 0, int32(i&3), now)
		}
	}); avg != 0 {
		t.Fatalf("Offer allocates %.1f times per run, want 0", avg)
	}
}

func TestOfferBurstAllocFree(t *testing.T) {
	s := NewStage(Config{TopK: 8, HHThresholdPkts: 4, ChurnMin: 1, SpikeBytes: 1 << 10},
		4, func(*fevent.Event) {})
	pkts := make([]pkt.Packet, 32)
	slots := make([]pkt.Slot, 32)
	for i := range pkts {
		pkts[i] = pkt.Packet{Flow: randFlow(i), WireLen: 724}
		slots[i] = pkt.Slot{P: &pkts[i], Port: 0, A: int32(i & 3)}
	}
	now := sim.Time(0)
	if avg := testing.AllocsPerRun(200, func() {
		now += 100
		s.OfferBurst(slots, now)
	}); avg != 0 {
		t.Fatalf("OfferBurst allocates %.1f times per run, want 0", avg)
	}
}

func TestFlushAllocFree(t *testing.T) {
	s := NewStage(Config{TopK: 8, HHThresholdPkts: 4, ChurnMin: 1, SpikeBytes: 1 << 10},
		4, func(*fevent.Event) {})
	pkts := make([]pkt.Packet, 16)
	for i := range pkts {
		pkts[i] = pkt.Packet{Flow: randFlow(i), WireLen: 1400}
		s.Offer(&pkts[i], 0, int32(i&3), sim.Time(i))
	}
	now := sim.Time(1000)
	if avg := testing.AllocsPerRun(200, func() {
		now += 100
		s.Flush(now)
	}); avg != 0 {
		t.Fatalf("Flush allocates %.1f times per run, want 0", avg)
	}
}
