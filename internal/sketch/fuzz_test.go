package sketch

import (
	"testing"

	"netseer/internal/fevent"
	"netseer/internal/pkt"
	"netseer/internal/sim"
)

// FuzzSketch drives the whole stage from arbitrary bytes — each byte pair
// is one packet (flow index, egress port, size nibble) — and checks every
// emitted event against an exact map-based oracle maintained alongside:
//
//   - CMS estimates never fall below exact counts (overestimate-only).
//   - Heavy-hitter events only fire at/above the configured threshold and
//     never exceed the exact count plus the stream's worst-case collision
//     mass (bounded deterministically by the stream length).
//   - Top-K churn satisfies count − err ≤ true ≤ count for residents.
//   - Aggregate spikes match the exact per-(port, window) byte bins.
func FuzzSketch(f *testing.F) {
	f.Add([]byte{0, 0})
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8})
	seed := make([]byte, 512)
	for i := range seed {
		seed[i] = byte(i * 7)
	}
	f.Add(seed)

	f.Fuzz(func(t *testing.T, data []byte) {
		const ports = 4
		cfg := Config{
			CMSWidth: 64, CMSDepth: 3, TopK: 4,
			HHThresholdPkts: 8, ChurnMin: 1,
			Window: 1000, SpikeBytes: 4 << 10,
		}
		truth := make(map[pkt.FlowKey]uint32)
		binBytes := make(map[[2]uint16]uint64) // (port, window) → bytes
		var now sim.Time

		var events []fevent.Event
		s := NewStage(cfg, ports, func(e *fevent.Event) { events = append(events, *e) })

		n := 0
		for i := 0; i+1 < len(data); i += 2 {
			flow := randFlow(int(data[i] & 0x0f))
			port := int32(data[i] >> 6)
			size := 64 + int(data[i+1]&0xf0)*8
			if data[i+1]&1 != 0 {
				now += sim.Time(data[i+1]) * 17
			}
			p := pkt.Packet{Flow: flow, WireLen: size}
			s.Offer(&p, 0, port, now)
			n++
			truth[flow]++
			win := uint16(uint64(now) / uint64(cfg.Window))
			binBytes[[2]uint16{uint16(port), win}] += uint64(size)

			if est := s.CMSEstimate(flow.Hash()); est < truth[flow] {
				t.Fatalf("CMS underestimate after %d pkts: est %d < true %d", n, est, truth[flow])
			}
		}
		s.Flush(now)

		if got := s.Stats().Pkts; got != uint64(n) {
			t.Fatalf("stage counted %d packets, offered %d", got, n)
		}
		for i := range events {
			e := &events[i]
			switch e.Type {
			case fevent.TypeHeavyHitter:
				tr := truth[e.Flow]
				if tr == 0 {
					t.Fatalf("heavy hitter for a flow never offered: %+v", e)
				}
				if uint32(e.Count) < cfg.HHThresholdPkts {
					t.Fatalf("heavy hitter below threshold: %+v", e)
				}
				// The estimate can only exceed truth by colliding streams,
				// which the stream length bounds.
				if uint64(e.Count) > uint64(tr)+uint64(n) {
					t.Fatalf("heavy-hitter count exceeds stream length bound: %+v (true %d, n %d)", e, tr, n)
				}
			case fevent.TypeTopKChurn:
				tr := uint64(truth[e.Flow])
				if tr == 0 {
					t.Fatalf("churn for a flow never offered: %+v", e)
				}
				if uint64(e.Count) > tr+uint64(e.SketchErr) {
					t.Fatalf("churn count %d − err %d exceeds true %d: %+v", e.Count, e.SketchErr, tr, e)
				}
			case fevent.TypeAggSpike:
				b := binBytes[[2]uint16{uint16(e.EgressPort), e.Window}]
				if b < cfg.SpikeBytes {
					t.Fatalf("spike for a bin below threshold (%d bytes): %+v", b, e)
				}
				if want := clamp16((b + 1023) >> 10); e.Count > want {
					t.Fatalf("spike count %d exceeds exact bin %d KiB: %+v", e.Count, want, e)
				}
				if e.Flow != (pkt.FlowKey{}) {
					t.Fatalf("spike with non-zero flow: %+v", e)
				}
			default:
				t.Fatalf("stage emitted a non-sketch event type: %+v", e)
			}
			// Every record must round-trip the 24-byte wire encoding.
			var back fevent.Event
			if err := back.DecodeRecord(e.AppendRecord(nil)); err != nil {
				t.Fatalf("record round trip failed: %v (%+v)", err, e)
			} else if back != *e {
				t.Fatalf("record round trip changed event:\n sent %+v\n got  %+v", *e, back)
			}
		}
		// Final sketch state agrees with the exact oracle.
		tk := s.TopKTable()
		for i := 0; i < tk.Len(); i++ {
			flow, count, err := tk.Entry(i)
			tr := uint64(truth[flow])
			if tr == 0 || count < tr || count-err > tr {
				t.Fatalf("top-K resident violates invariants: flow %v count %d err %d true %d", flow, count, err, tr)
			}
		}
	})
}
