// Package sketch implements NetSeer's compact-sketch detection family:
// a count-min sketch (plain and conservative-update) and a
// space-saving/HashPipe-style top-K table, plus the per-switch Stage that
// drives both from the pipeline burst path and emits the three sketch
// event types (heavy-hitter onset, top-K churn, per-link aggregate
// spike).
//
// Everything obeys the same match-action memory model the group cache
// respects: fixed-size arrays sized at construction, direct indexing off
// the pre-computed CRC-32C flow hash, and zero steady-state allocation
// (pinned by AllocsPerRun tests and the hotpath/sketch_* benchdiff gate).
package sketch

// CMS is a count-min sketch: depth rows of width counters. An update
// increments (or, in conservative-update mode, raises to the new minimum)
// one counter per row; the estimate for a key is the minimum of its
// counters, which can only overestimate the true count — never
// underestimate. With w = ⌈e/ε⌉ and d = ⌈ln 1/δ⌉ the overestimate exceeds
// ε·N with probability at most δ (Cormode & Muthukrishnan); the
// conservative-update variant (Estan & Varghese) only ever writes smaller
// values than the plain sketch, so it inherits the same bound.
//
// Keys are the 32-bit CRC-32C flow hashes the data plane already computes
// (§3.6): the d row indices are derived with a Kirsch-Mitzenmacher double
// hash, so updating costs d multiply-free index computations and no
// allocation.
type CMS struct {
	width uint32
	depth int
	// mask is width-1 when width is a power of two (the recommended
	// sizing), replacing the per-row modulo with an AND.
	mask uint32
	// rows holds depth*width counters, row-major.
	rows []uint32
	// conservative selects conservative update.
	conservative bool
	// total is the stream length N (number of Update calls).
	total uint64
}

// NewCMS returns a sketch with the given geometry. Panics on non-positive
// dimensions, since a zero-width sketch cannot honor the overestimate
// contract.
func NewCMS(width, depth int, conservative bool) *CMS {
	if width <= 0 || depth <= 0 {
		panic("sketch: CMS width and depth must be positive")
	}
	c := &CMS{
		width:        uint32(width),
		depth:        depth,
		rows:         make([]uint32, width*depth),
		conservative: conservative,
	}
	if width&(width-1) == 0 {
		c.mask = uint32(width) - 1
	}
	return c
}

// mix is a 32-bit finalizer (murmur3 fmix32) used to derive the second
// hash of the double-hashing scheme from the flow hash.
func mix(h uint32) uint32 {
	h ^= h >> 16
	h *= 0x85ebca6b
	h ^= h >> 13
	h *= 0xc2b2ae35
	h ^= h >> 16
	return h
}

// cell returns the index into rows for row i of key hash h, using
// h1 + i·h2 double hashing (h2 forced odd so all rows differ).
func (c *CMS) cell(h uint32, i int) uint32 {
	idx := h + uint32(i)*(mix(h)|1)
	if c.mask != 0 {
		return uint32(i)*c.width + (idx & c.mask)
	}
	return uint32(i)*c.width + idx%c.width
}

// Update counts one occurrence of the key and returns the new estimate.
func (c *CMS) Update(h uint32) uint32 {
	c.total++
	if !c.conservative {
		est := ^uint32(0)
		for i := 0; i < c.depth; i++ {
			j := c.cell(h, i)
			if c.rows[j] != ^uint32(0) {
				c.rows[j]++
			}
			if c.rows[j] < est {
				est = c.rows[j]
			}
		}
		return est
	}
	// Conservative update: only raise counters to the new minimum, so no
	// counter grows beyond what the smallest (most accurate) cell
	// requires.
	est := c.Estimate(h)
	if est == ^uint32(0) {
		return est
	}
	est++
	for i := 0; i < c.depth; i++ {
		j := c.cell(h, i)
		if c.rows[j] < est {
			c.rows[j] = est
		}
	}
	return est
}

// AddN adds n occurrences of the key using the order-free plain-CMS rule
// (every cell grows by n, saturating), regardless of the conservative
// flag. The final plain state is independent of stream order — each cell
// is exactly the sum of the true counts of the keys hashing to it — and
// upper-bounds every intermediate conservative-update estimate of any
// interleaving of the same multiset. The oracle's differential checker
// uses this to rebuild a deterministic estimate ceiling from exact
// ground-truth flow counts.
func (c *CMS) AddN(h uint32, n uint64) {
	for i := 0; i < c.depth; i++ {
		j := c.cell(h, i)
		if s := uint64(c.rows[j]) + n; s < uint64(^uint32(0)) {
			c.rows[j] = uint32(s)
		} else {
			c.rows[j] = ^uint32(0)
		}
	}
	c.total += n
}

// Estimate returns the current estimate for the key: the minimum of its
// depth counters. Never below the true count of updates for the key.
func (c *CMS) Estimate(h uint32) uint32 {
	est := ^uint32(0)
	for i := 0; i < c.depth; i++ {
		if v := c.rows[c.cell(h, i)]; v < est {
			est = v
		}
	}
	return est
}

// Total returns the stream length N (number of updates), the N of the
// ε·N error bound.
func (c *CMS) Total() uint64 { return c.total }

// Width and Depth report the geometry.
func (c *CMS) Width() int { return int(c.width) }

// Depth reports the number of rows.
func (c *CMS) Depth() int { return c.depth }

// Occupancy counts non-zero cells — the obs gauge that shows how close
// the sketch is to saturating its error bound (a full sketch means
// every new flow collides somewhere).
func (c *CMS) Occupancy() int {
	n := 0
	for _, v := range c.rows {
		if v != 0 {
			n++
		}
	}
	return n
}

// Reset zeroes every counter and the stream length.
func (c *CMS) Reset() {
	for i := range c.rows {
		c.rows[i] = 0
	}
	c.total = 0
}

// MemoryBytes reports the SRAM footprint of the counter array, for the
// memory-budget accounting in DESIGN.md §13.
func (c *CMS) MemoryBytes() int { return len(c.rows) * 4 }
