package sketch

import (
	"testing"

	"netseer/internal/fevent"
	"netseer/internal/pkt"
	"netseer/internal/sim"
)

// Property tests for the sketch guarantees in isolation, over seeded
// random (geometry, stream) draws — not fixed vectors. Each property is
// the deterministic half of the textbook claim: overestimate-only,
// conservative ≤ plain, and the space-saving error/residency invariants.

// randFlow derives a distinct 5-tuple for index i.
func randFlow(i int) pkt.FlowKey {
	return pkt.FlowKey{
		SrcIP: pkt.IP(10, 0, byte(i>>8), byte(i)), DstIP: pkt.IP(10, 1, 2, 3),
		SrcPort: uint16(1000 + i), DstPort: 80, Proto: pkt.ProtoUDP,
	}
}

// randStream draws a stream of flow indices from [0, flows) with a mild
// skew (squaring biases toward low indices, so some flows dominate).
func randStream(rng *sim.Stream, flows, n int) []int {
	out := make([]int, n)
	for i := range out {
		r := rng.Float64()
		out[i] = int(r * r * float64(flows))
		if out[i] >= flows {
			out[i] = flows - 1
		}
	}
	return out
}

func TestCMSOverestimateOnly(t *testing.T) {
	for seed := uint64(1); seed <= 20; seed++ {
		rng := sim.NewStream(seed, "cms-prop")
		width := 8 << rng.Intn(8) // 8..1024
		depth := 1 + rng.Intn(5)
		flows := 1 + rng.Intn(256)
		stream := randStream(rng, flows, 200+rng.Intn(2000))
		for _, conservative := range []bool{false, true} {
			c := NewCMS(width, depth, conservative)
			truth := make(map[int]uint32)
			for _, f := range stream {
				truth[f]++
				if est := c.Update(randFlow(f).Hash()); est < truth[f] {
					t.Fatalf("seed %d w=%d d=%d cons=%v: update estimate %d below true %d",
						seed, width, depth, conservative, est, truth[f])
				}
			}
			for f, n := range truth {
				if est := c.Estimate(randFlow(f).Hash()); est < n {
					t.Fatalf("seed %d w=%d d=%d cons=%v: final estimate %d below true %d",
						seed, width, depth, conservative, est, n)
				}
			}
			if c.Total() != uint64(len(stream)) {
				t.Fatalf("total %d, want %d", c.Total(), len(stream))
			}
		}
	}
}

func TestConservativeNeverExceedsPlain(t *testing.T) {
	for seed := uint64(1); seed <= 20; seed++ {
		rng := sim.NewStream(seed, "cms-cons")
		width := 4 << rng.Intn(6) // tiny widths force collisions
		depth := 1 + rng.Intn(4)
		flows := 1 + rng.Intn(128)
		stream := randStream(rng, flows, 100+rng.Intn(1500))
		plain := NewCMS(width, depth, false)
		cons := NewCMS(width, depth, true)
		seen := make(map[int]bool)
		for _, f := range stream {
			seen[f] = true
			plain.Update(randFlow(f).Hash())
			cons.Update(randFlow(f).Hash())
		}
		for f := range seen {
			h := randFlow(f).Hash()
			if ce, pe := cons.Estimate(h), plain.Estimate(h); ce > pe {
				t.Fatalf("seed %d w=%d d=%d: conservative estimate %d exceeds plain %d",
					seed, width, depth, ce, pe)
			}
		}
	}
}

func TestCMSAddNMatchesUpdates(t *testing.T) {
	// AddN is the order-free construction the oracle rebuilds ground truth
	// with; it must agree exactly with n plain updates of the same key.
	rng := sim.NewStream(7, "cms-addn")
	a := NewCMS(64, 3, false)
	b := NewCMS(64, 3, false)
	for f := 0; f < 40; f++ {
		n := 1 + rng.Intn(50)
		h := randFlow(f).Hash()
		a.AddN(h, uint64(n))
		for i := 0; i < n; i++ {
			b.Update(h)
		}
	}
	for f := 0; f < 40; f++ {
		h := randFlow(f).Hash()
		if a.Estimate(h) != b.Estimate(h) {
			t.Fatalf("flow %d: AddN estimate %d != update estimate %d", f, a.Estimate(h), b.Estimate(h))
		}
	}
	if a.Total() != b.Total() {
		t.Fatalf("totals diverge: %d vs %d", a.Total(), b.Total())
	}
}

func TestSpaceSavingInvariants(t *testing.T) {
	for seed := uint64(1); seed <= 20; seed++ {
		rng := sim.NewStream(seed, "topk-prop")
		k := 2 + rng.Intn(30)
		flows := 1 + rng.Intn(200)
		stream := randStream(rng, flows, 100+rng.Intn(3000))
		tk := NewTopK(k)
		truth := make(map[pkt.FlowKey]uint64)
		for _, f := range stream {
			fl := randFlow(f)
			truth[fl]++
			tk.Offer(fl, fl.Hash())
		}
		n := uint64(len(stream))
		if tk.Total() != n {
			t.Fatalf("total %d, want %d", tk.Total(), n)
		}
		min := tk.Min()
		resident := make(map[pkt.FlowKey]bool)
		for i := 0; i < tk.Len(); i++ {
			flow, count, err := tk.Entry(i)
			resident[flow] = true
			tr := truth[flow]
			if tr == 0 {
				t.Fatalf("seed %d k=%d: resident flow never offered: %v", seed, k, flow)
			}
			if count < tr {
				t.Fatalf("seed %d k=%d: counter %d underestimates true %d", seed, k, count, tr)
			}
			if count-err > tr {
				t.Fatalf("seed %d k=%d: count %d − err %d exceeds true %d", seed, k, count, err, tr)
			}
			if err > min {
				t.Fatalf("seed %d k=%d: err %d exceeds min counter %d", seed, k, err, min)
			}
		}
		// Residency guarantee: every flow with true count > N/K is in the
		// table when the stream ends.
		for flow, tr := range truth {
			if tr*uint64(k) > n && !resident[flow] {
				t.Fatalf("seed %d k=%d: flow with true %d > N/K (N=%d) not resident", seed, k, tr, n)
			}
		}
	}
}

func TestTopKMinBoundsNK(t *testing.T) {
	rng := sim.NewStream(3, "topk-min")
	tk := NewTopK(8)
	for i := 0; i < 4000; i++ {
		f := randFlow(rng.Intn(100))
		tk.Offer(f, f.Hash())
	}
	if min := tk.Min(); min > tk.Total()/uint64(tk.K()) {
		t.Fatalf("min counter %d exceeds N/K = %d", min, tk.Total()/uint64(tk.K()))
	}
}

func TestNewPanicsOnBadGeometry(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("NewCMS width", func() { NewCMS(0, 4, false) })
	mustPanic("NewCMS depth", func() { NewCMS(16, 0, false) })
	mustPanic("NewTopK", func() { NewTopK(0) })
	mustPanic("NewStage report", func() { NewStage(Config{}, 4, nil) })
	mustPanic("NewStage ports", func() { NewStage(Config{}, 0, func(*fevent.Event) {}) })
}
