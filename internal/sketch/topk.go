package sketch

import "netseer/internal/pkt"

// TopK is a space-saving top-K table (Metwally et al., the sequential
// counterpart of HashPipe's pipelined layout): exactly K counters. A
// resident flow's counter increments in place; a missing flow evicts the
// current minimum and takes over its counter, inheriting the evicted
// value as its overestimation bound (err).
//
// Deterministic guarantees, pinned by property tests and the oracle:
//
//   - count is an overestimate: true ≤ count, and count − err ≤ true, so
//     err (always ≤ the minimum counter at entry time) bounds the error.
//   - any flow with true count > N/K is resident when the stream ends —
//     the min counter never exceeds N/K, so such a flow can never be the
//     victim once it is in, and its own packets put it in.
//
// Lookup is a linear scan guarded by a 32-bit hash compare; K is small
// (tens) by the match-action memory budget, so the scan stays cheap and
// the table needs no secondary index.
type TopK struct {
	entries []tkEntry
	n       int
	total   uint64
}

type tkEntry struct {
	hash  uint32
	flow  pkt.FlowKey
	count uint64
	err   uint64
}

// NewTopK returns a table with exactly k counters. Panics if k <= 0.
func NewTopK(k int) *TopK {
	if k <= 0 {
		panic("sketch: top-K size must be positive")
	}
	return &TopK{entries: make([]tkEntry, k)}
}

// Offer counts one packet of flow (with its pre-computed CRC-32C hash)
// and reports the flow's resulting counter and error bound. evicted is
// true when the flow entered by displacing the current minimum — the
// "churn" the Stage turns into TypeTopKChurn events.
func (t *TopK) Offer(flow pkt.FlowKey, hash uint32) (count, err uint64, evicted bool) {
	t.total++
	for i := 0; i < t.n; i++ {
		e := &t.entries[i]
		if e.hash == hash && e.flow == flow {
			e.count++
			return e.count, e.err, false
		}
	}
	if t.n < len(t.entries) {
		t.entries[t.n] = tkEntry{hash: hash, flow: flow, count: 1}
		t.n++
		return 1, 0, false
	}
	// Space-saving eviction: replace the minimum, inherit its counter as
	// the new entry's error bound.
	min := 0
	for i := 1; i < t.n; i++ {
		if t.entries[i].count < t.entries[min].count {
			min = i
		}
	}
	m := t.entries[min].count
	t.entries[min] = tkEntry{hash: hash, flow: flow, count: m + 1, err: m}
	return m + 1, m, true
}

// Len returns the number of occupied counters.
func (t *TopK) Len() int { return t.n }

// K returns the table capacity.
func (t *TopK) K() int { return len(t.entries) }

// Entry returns the i-th resident flow with its counter and error bound.
// Order is table order, not rank order.
func (t *TopK) Entry(i int) (flow pkt.FlowKey, count, err uint64) {
	e := &t.entries[i]
	return e.flow, e.count, e.err
}

// Min returns the smallest resident counter (0 when the table is not yet
// full) — the bound every entry's err respects.
func (t *TopK) Min() uint64 {
	if t.n < len(t.entries) {
		return 0
	}
	m := t.entries[0].count
	for i := 1; i < t.n; i++ {
		if t.entries[i].count < m {
			m = t.entries[i].count
		}
	}
	return m
}

// Total returns the stream length N (number of offers), the N of the N/K
// residency guarantee.
func (t *TopK) Total() uint64 { return t.total }

// Reset empties the table.
func (t *TopK) Reset() {
	t.n = 0
	t.total = 0
}

// MemoryBytes reports the SRAM footprint of the counter array, for the
// memory-budget accounting in DESIGN.md §13.
func (t *TopK) MemoryBytes() int { return len(t.entries) * (4 + pkt.FlowKeyLen + 8 + 8) }
