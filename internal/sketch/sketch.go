package sketch

import (
	"netseer/internal/fevent"
	"netseer/internal/pkt"
	"netseer/internal/sim"
)

// ReportFunc receives every sketch-detected flow event. The *fevent.Event
// is only valid for the duration of the call; implementations must copy
// it if they retain it (the same contract as groupcache.ReportFunc).
type ReportFunc func(e *fevent.Event)

// Config parameterizes the sketch stage. Zero fields take defaults.
type Config struct {
	// CMSWidth/CMSDepth size the count-min sketch (defaults 2048×4:
	// ε = e/2048 ≈ 0.0013, δ = e⁻⁴ ≈ 0.018, 32 KiB of counters).
	CMSWidth, CMSDepth int
	// PlainCMS disables conservative update (ablation; the default
	// conservative variant strictly dominates it).
	PlainCMS bool
	// TopK is the space-saving table size (default 32).
	TopK int
	// HHThresholdPkts is the heavy-hitter onset threshold on the count-min
	// estimate, in packets (default 64).
	HHThresholdPkts uint32
	// ChurnMin suppresses top-K churn events whose entering counter is
	// below it (default 8): early table fill is churn-by-construction, not
	// signal. The Flush snapshot ignores it.
	ChurnMin uint64
	// Window is the aggregate-spike accounting window (default 250 µs).
	Window sim.Time
	// SpikeBytes is the per-(egress port, window) byte threshold for an
	// aggregate-spike event (default 64 KiB).
	SpikeBytes uint64
	// HHSeenSlots sizes the direct-indexed seen-filter that keeps a
	// heavy-hitter from re-reporting on every packet past the threshold
	// (default 1024; must cope like a groupcache table — collisions evict,
	// the evictee re-reports, and the CPU eliminator absorbs the
	// duplicate).
	HHSeenSlots int
}

func (c Config) withDefaults() Config {
	if c.CMSWidth <= 0 {
		c.CMSWidth = 2048
	}
	if c.CMSDepth <= 0 {
		c.CMSDepth = 4
	}
	if c.TopK <= 0 {
		c.TopK = 32
	}
	if c.HHThresholdPkts == 0 {
		c.HHThresholdPkts = 64
	}
	if c.ChurnMin == 0 {
		c.ChurnMin = 8
	}
	if c.Window <= 0 {
		c.Window = 250 * sim.Microsecond
	}
	if c.SpikeBytes == 0 {
		c.SpikeBytes = 64 << 10
	}
	if c.HHSeenSlots <= 0 {
		c.HHSeenSlots = 1024
	}
	return c
}

// Stats counts the stage's work. Plain counters, single-owner like every
// pipeline stage; scrapes read owner-published mirrors.
type Stats struct {
	Pkts        uint64 // packets observed
	HHEvents    uint64 // heavy-hitter onset events emitted
	Churn       uint64 // top-K churn events emitted per-packet
	Snapshots   uint64 // top-K resident events emitted by Flush
	Spikes      uint64 // aggregate-spike events emitted
	SeenEvict   uint64 // heavy-hitter seen-filter collisions
	WindowRolls uint64 // aggregate windows closed and reset
}

// hhSeen is one slot of the heavy-hitter seen-filter: a direct-indexed
// exact-match table (same discipline as a groupcache table) remembering
// which flows already reported their onset.
type hhSeen struct {
	used bool
	hash uint32
	flow pkt.FlowKey
}

// Stage is the per-switch sketch detection stage. It implements
// dataplane.SketchStage. Not safe for concurrent use: it belongs to one
// switch pipeline, like every other stage.
type Stage struct {
	cfg  Config
	cms  *CMS
	topk *TopK

	seen     []hhSeen
	seenMask uint32

	// Per-egress-port byte accumulators for the current window, plus the
	// per-port byte level already emitted for it — Flush can then re-emit
	// only when the level advanced, keeping repeated flushes (the
	// simulator's drain loop) idempotent.
	portBytes []uint64
	emitted   []uint64
	curWin    uint64
	haveWin   bool

	report  ReportFunc
	scratch fevent.Event
	// zeroHash is the pre-computed CRC-32C of the zero flow key, carried
	// by aggregate-spike records (which have no subject flow).
	zeroHash uint32

	stats Stats
}

// NewStage builds a sketch stage for a switch with the given number of
// egress ports, delivering events to report. Panics if report is nil or
// ports <= 0: a silently dropped event would void the oracle's
// completeness claims.
func NewStage(cfg Config, ports int, report ReportFunc) *Stage {
	if report == nil {
		panic("sketch: report must not be nil")
	}
	if ports <= 0 {
		panic("sketch: ports must be positive")
	}
	cfg = cfg.withDefaults()
	slots := 1
	for slots < cfg.HHSeenSlots {
		slots <<= 1
	}
	return &Stage{
		cfg:       cfg,
		cms:       NewCMS(cfg.CMSWidth, cfg.CMSDepth, !cfg.PlainCMS),
		topk:      NewTopK(cfg.TopK),
		seen:      make([]hhSeen, slots),
		seenMask:  uint32(slots - 1),
		portBytes: make([]uint64, ports),
		emitted:   make([]uint64, ports),
		report:    report,
		zeroHash:  pkt.FlowKey{}.Hash(),
	}
}

// Config returns the effective (defaulted) configuration.
func (s *Stage) Config() Config { return s.cfg }

// Stats returns a copy of the stage counters.
func (s *Stage) Stats() Stats { return s.stats }

// Occupancy reports how full the fixed structures are: non-zero
// count-min cells and resident space-saving entries. Read by the
// owner-published obs mirrors (O(width·depth), so per publish point,
// never per packet).
func (s *Stage) Occupancy() (cmsCells, topkEntries int) {
	return s.cms.Occupancy(), s.topk.Len()
}

// CMSEstimate exposes the current count-min estimate for a flow hash
// (tests and the oracle read it; the pipeline never does).
func (s *Stage) CMSEstimate(h uint32) uint32 { return s.cms.Estimate(h) }

// TopKTable exposes the space-saving table (tests and the oracle).
func (s *Stage) TopKTable() *TopK { return s.topk }

// clamp16 saturates a counter into the 16-bit wire field.
func clamp16(v uint64) uint16 {
	if v > 0xffff {
		return 0xffff
	}
	return uint16(v)
}

// window maps a timestamp to its window index.
func (s *Stage) window(now sim.Time) uint64 {
	return uint64(now) / uint64(s.cfg.Window)
}

// rollWindow finalizes the current aggregate window if now belongs to a
// later one: emit any pending spikes, then reset the accumulators.
func (s *Stage) rollWindow(now sim.Time) {
	w := s.window(now)
	if !s.haveWin {
		s.curWin, s.haveWin = w, true
		return
	}
	if w == s.curWin {
		return
	}
	s.emitSpikes()
	for i := range s.portBytes {
		s.portBytes[i] = 0
		s.emitted[i] = 0
	}
	s.curWin = w
	s.stats.WindowRolls++
}

// emitSpikes reports every egress port whose current-window byte total
// meets the spike threshold and advanced past the level already emitted
// for this window (so repeated flushes of a quiescent stage emit
// nothing).
func (s *Stage) emitSpikes() {
	for port, b := range s.portBytes {
		if b < s.cfg.SpikeBytes || b <= s.emitted[port] {
			continue
		}
		s.emitted[port] = b
		s.scratch = fevent.Event{
			Type:       fevent.TypeAggSpike,
			EgressPort: uint8(port),
			Window:     uint16(s.curWin),
			Count:      clamp16((b + 1023) >> 10), // KiB, rounded up
			Hash:       s.zeroHash,
		}
		s.stats.Spikes++
		s.report(&s.scratch)
	}
}

// offer runs the per-packet detection work (count-min/heavy-hitter and
// space-saving/churn). Window accounting is done by the callers so a
// burst pays the rollover check once.
func (s *Stage) offer(p *pkt.Packet, in, out int32) {
	s.stats.Pkts++
	s.portBytes[out] += uint64(p.WireLen)
	h := p.Flow.Hash()

	est := s.cms.Update(h)
	if est >= s.cfg.HHThresholdPkts {
		slot := &s.seen[h&s.seenMask]
		if !slot.used || slot.hash != h || slot.flow != p.Flow {
			if slot.used {
				s.stats.SeenEvict++
			}
			slot.used, slot.hash, slot.flow = true, h, p.Flow
			s.scratch = fevent.Event{
				Type:        fevent.TypeHeavyHitter,
				Flow:        p.Flow,
				IngressPort: uint8(in),
				EgressPort:  uint8(out),
				Count:       clamp16(uint64(est)),
				Hash:        h,
			}
			s.stats.HHEvents++
			s.report(&s.scratch)
		}
	}

	count, errBound, evicted := s.topk.Offer(p.Flow, h)
	if evicted && count >= s.cfg.ChurnMin {
		s.scratch = fevent.Event{
			Type:       fevent.TypeTopKChurn,
			Flow:       p.Flow,
			EgressPort: uint8(out),
			Count:      clamp16(count),
			SketchErr:  clamp16(errBound),
			Hash:       h,
		}
		s.stats.Churn++
		s.report(&s.scratch)
	}
}

// Offer observes one forwarded packet (sequential entry point; the
// pipeline uses OfferBurst). in is the ingress port, out the chosen
// egress port.
func (s *Stage) Offer(p *pkt.Packet, in, out int32, now sim.Time) {
	s.rollWindow(now)
	s.offer(p, in, out)
}

// OfferBurst implements dataplane.SketchStage: observe every surviving
// slot of one pipeline burst. All packets of a burst share the same
// timestamp, so the window rollover check runs once and the per-packet
// loop stays branch-light; results are byte-identical to calling Offer
// per slot (pinned by the twin tests).
func (s *Stage) OfferBurst(slots []pkt.Slot, now sim.Time) {
	if len(slots) == 0 {
		return
	}
	s.rollWindow(now)
	for i := range slots {
		sl := &slots[i]
		s.offer(sl.P, sl.Port, sl.A)
	}
}

// Flush emits everything the stage is still holding: pending
// aggregate-spike windows and a snapshot of every space-saving resident
// (as top-K churn events carrying the final counters — this is what makes
// the oracle's top-K completeness claim deterministic: any flow with true
// count > N/K is resident at the end, so it is always reported).
// Idempotent: a second Flush with no traffic in between emits nothing new
// except the (duplicate-suppressed) snapshot.
func (s *Stage) Flush(now sim.Time) {
	s.rollWindow(now)
	s.emitSpikes()
	for i := 0; i < s.topk.Len(); i++ {
		flow, count, errBound := s.topk.Entry(i)
		s.scratch = fevent.Event{
			Type:      fevent.TypeTopKChurn,
			Flow:      flow,
			Count:     clamp16(count),
			SketchErr: clamp16(errBound),
			Hash:      flow.Hash(),
		}
		s.stats.Snapshots++
		s.report(&s.scratch)
	}
}

// Reset clears all sketch state (between experiment repetitions).
func (s *Stage) Reset() {
	s.cms.Reset()
	s.topk.Reset()
	for i := range s.seen {
		s.seen[i] = hhSeen{}
	}
	for i := range s.portBytes {
		s.portBytes[i] = 0
		s.emitted[i] = 0
	}
	s.haveWin = false
	s.stats = Stats{}
}

// MemoryBytes totals the stage's SRAM footprint (sketch + table + filter
// + window accumulators), for the DESIGN.md §13 budget table.
func (s *Stage) MemoryBytes() int {
	perSeen := 1 + 4 + pkt.FlowKeyLen
	return s.cms.MemoryBytes() + s.topk.MemoryBytes() +
		len(s.seen)*perSeen + len(s.portBytes)*16
}
