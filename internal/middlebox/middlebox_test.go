package middlebox

import (
	"testing"

	"netseer/internal/fevent"
	"netseer/internal/link"
	"netseer/internal/nic"
	"netseer/internal/pkt"
	"netseer/internal/sim"
)

// rig: NIC-A ── linkA ── [middlebox] ── linkB ── NIC-B.
type rig struct {
	sim    *sim.Simulator
	mb     *Middlebox
	a, b   *nic.NIC
	linkA  *link.Link
	linkB  *link.Link
	events []fevent.Event
	toA    []*pkt.Packet
	toB    []*pkt.Packet
}

type sink struct{ r *rig }

func (s *sink) Deliver(b *fevent.Batch) { s.r.events = append(s.r.events, b.Events...) }

type deferredDev struct{ dev link.Device }

func (d *deferredDev) Receive(p *pkt.Packet, port int) {
	if d.dev != nil {
		d.dev.Receive(p, port)
	}
}

func newRig(t *testing.T, cfg Config) *rig {
	t.Helper()
	s := sim.New()
	r := &rig{sim: s}
	r.mb = New(s, cfg, &sink{r})

	aDef, mbNorthDef := &deferredDev{}, &deferredDev{}
	r.linkA = link.New(s, link.Endpoint{Dev: aDef, Port: 0}, link.Endpoint{Dev: mbNorthDef, Port: 0},
		sim.Microsecond, sim.NewStream(1, "mbA"))
	mbSouthDef, bDef := &deferredDev{}, &deferredDev{}
	r.linkB = link.New(s, link.Endpoint{Dev: mbSouthDef, Port: 0}, link.Endpoint{Dev: bDef, Port: 0},
		sim.Microsecond, sim.NewStream(2, "mbB"))

	r.a = nic.New(s, r.linkA, true, nic.Config{}, func(p *pkt.Packet) { r.toA = append(r.toA, p) })
	r.b = nic.New(s, r.linkB, false, nic.Config{}, func(p *pkt.Packet) { r.toB = append(r.toB, p) })
	aDef.dev = r.a
	bDef.dev = r.b
	mbNorthDef.dev = r.mb.Device(North)
	mbSouthDef.dev = r.mb.Device(South)
	r.mb.AttachLink(North, r.linkA, false) // middlebox is the B side of linkA
	r.mb.AttachLink(South, r.linkB, true)  // and the A side of linkB
	return r
}

func flow(n uint32) pkt.FlowKey {
	return pkt.FlowKey{SrcIP: n, DstIP: 99, SrcPort: uint16(n), DstPort: 80, Proto: pkt.ProtoTCP}
}

func (r *rig) send(f pkt.FlowKey, size int) {
	r.a.Send(&pkt.Packet{ID: 1, Kind: pkt.KindData, Flow: f, WireLen: size, TTL: 64})
}

func TestPassThrough(t *testing.T) {
	r := newRig(t, Config{})
	for i := 0; i < 20; i++ {
		r.send(flow(1), 724)
	}
	r.sim.RunAll()
	if len(r.toB) != 20 {
		t.Fatalf("delivered %d of 20 through the middlebox", len(r.toB))
	}
	if r.mb.Processed != 20 {
		t.Errorf("Processed = %d", r.mb.Processed)
	}
	for _, p := range r.toB {
		if p.HasSeqTag {
			t.Error("tag leaked to host")
		}
	}
}

func TestOverloadReportsFlowEvents(t *testing.T) {
	// Service 1 Gb/s with a 10 kB queue: a 100-packet burst overflows.
	r := newRig(t, Config{ServiceBps: 1e9, QueueBytes: 10 << 10})
	for i := 0; i < 100; i++ {
		r.send(flow(7), 1000)
	}
	r.sim.RunAll()
	if r.mb.Overloaded == 0 {
		t.Fatal("no overload drops")
	}
	var reported bool
	for _, e := range r.events {
		if e.Type == fevent.TypeDrop && e.Flow == flow(7) {
			reported = true
		}
	}
	if !reported {
		t.Error("overload drop not reported as a flow event (principle 2)")
	}
	if int(r.mb.Processed)+int(r.mb.Overloaded) != 100 {
		t.Errorf("processed %d + overloaded %d != 100", r.mb.Processed, r.mb.Overloaded)
	}
}

func TestWireLossTowardMiddleboxRecovered(t *testing.T) {
	// Loss on NIC-A → middlebox: the middlebox's tracker detects the gap,
	// NIC-A's ring recovers the flow into its local log.
	r := newRig(t, Config{})
	for i := 0; i < 3; i++ {
		r.send(flow(1), 300)
	}
	r.sim.RunAll()
	r.linkA.InjectLossBurst(true, 2)
	r.send(flow(2), 300)
	r.send(flow(2), 300)
	for i := 0; i < 3; i++ {
		r.send(flow(1), 300)
	}
	r.sim.RunAll()
	if len(r.a.Log) != 2 {
		t.Fatalf("NIC log has %d entries, want 2", len(r.a.Log))
	}
	for _, e := range r.a.Log {
		if e.Flow != flow(2) {
			t.Errorf("recovered wrong flow %v", e.Flow)
		}
	}
}

func TestWireLossFromMiddleboxRecovered(t *testing.T) {
	// Loss on middlebox → NIC-B: NIC-B detects the gap, the middlebox's
	// ring recovers the victims and reports them (principle 1).
	r := newRig(t, Config{})
	for i := 0; i < 3; i++ {
		r.send(flow(1), 300)
	}
	r.sim.RunAll()
	r.linkB.InjectLossBurst(true, 2)
	r.send(flow(5), 300)
	r.send(flow(5), 300)
	r.sim.RunAll()
	for i := 0; i < 3; i++ {
		r.send(flow(1), 300)
	}
	r.sim.RunAll()
	if r.mb.Recovered != 2 {
		t.Fatalf("recovered %d of 2 wire drops", r.mb.Recovered)
	}
	var found int
	for _, e := range r.events {
		if e.DropCode == fevent.DropInterSwitch && e.Flow == flow(5) {
			found++
		}
	}
	if found != 2 {
		t.Errorf("reported %d inter-device drops for the victim flow", found)
	}
}

func TestLegacyMiddleboxMissesWireLoss(t *testing.T) {
	// DisableSeq (a middlebox violating principle 1): wire drops around
	// it are invisible.
	r := newRig(t, Config{DisableSeq: true})
	for i := 0; i < 3; i++ {
		r.send(flow(1), 300)
	}
	r.sim.RunAll()
	r.linkB.InjectLossBurst(true, 2)
	for i := 0; i < 6; i++ {
		r.send(flow(1), 300)
	}
	r.sim.RunAll()
	if r.mb.Recovered != 0 {
		t.Error("legacy middlebox recovered wire drops without seq modules")
	}
	if len(r.events) != 0 {
		t.Errorf("%d events from a legacy middlebox", len(r.events))
	}
}

func TestNilSinkPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("nil sink did not panic")
		}
	}()
	New(sim.New(), Config{}, nil)
}
