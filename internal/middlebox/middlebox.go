// Package middlebox implements the paper's §3.7 principles for extending
// flow event telemetry to middleboxes (firewalls, load balancers, …):
//
//  1. Inter-device drop awareness — the middlebox runs the same
//     packet-ID/ring-buffer modules as switches and NICs on both of its
//     links, so drops on the wire to or from it are detected and the
//     victim flows recovered.
//  2. Event-based anomaly detection — the middlebox detects local events
//     (processing-queue overflow, rule-table drops) as flow events rather
//     than coarse counters.
//  3. Reliable report — events are delivered to the same backend through
//     a reliable channel.
//
// The model here is a bump-in-the-wire device with a finite processing
// queue and service rate (think software load balancer): traffic enters
// on one side, is processed, and leaves on the other. Overload drops are
// reported as flow events; wire losses on either side are recovered via
// the seq modules.
package middlebox

import (
	"netseer/internal/fevent"
	"netseer/internal/link"
	"netseer/internal/pkt"
	"netseer/internal/ringbuf"
	"netseer/internal/seqtrack"
	"netseer/internal/sim"
)

// Side identifies one of the middlebox's two attachments.
type Side int

// Sides.
const (
	// North faces the fabric (switch side).
	North Side = iota
	// South faces the servers.
	South
)

// Config parameterizes a middlebox.
type Config struct {
	// ServiceBps is the processing capacity (default 20 Gb/s — software
	// packet processing, below line rate by design).
	ServiceBps float64
	// QueueBytes is the processing-queue depth (default 256 KB).
	QueueBytes int
	// RingSlots sizes the per-side egress rings (default 256).
	RingSlots int
	// DisableSeq turns off the inter-device drop modules (a legacy
	// middlebox that violates principle 1).
	DisableSeq bool
	// SwitchID identifies this middlebox in reported events.
	SwitchID uint16
}

func (c Config) withDefaults() Config {
	if c.ServiceBps <= 0 {
		c.ServiceBps = 20e9
	}
	if c.QueueBytes <= 0 {
		c.QueueBytes = 256 << 10
	}
	if c.RingSlots <= 0 {
		c.RingSlots = 256
	}
	return c
}

// EventSink receives the middlebox's flow events (principle 3 — in
// production this is a collector.Client over TCP).
type EventSink interface {
	Deliver(b *fevent.Batch)
}

// side is the per-attachment state.
type side struct {
	lnk     *link.Link
	fromA   bool
	nextSeq uint32
	ring    *ringbuf.Ring
	tracker *seqtrack.Tracker
	lastGap seqtrack.Notification
	pending []uint32
}

// Middlebox is a bump-in-the-wire device with FET instrumentation.
type Middlebox struct {
	sim  *sim.Simulator
	cfg  Config
	sink EventSink

	sides [2]*side

	// Processing queue.
	queued    int
	busyUntil sim.Time

	// Stats.
	Processed  uint64
	Overloaded uint64 // local queue-overflow drops
	Recovered  uint64 // wire drops recovered from rings
}

// sideDev adapts link.Device delivery to a specific side.
type sideDev struct {
	mb *Middlebox
	s  Side
}

// Receive implements link.Device.
func (d *sideDev) Receive(p *pkt.Packet, port int) { d.mb.receive(d.s, p) }

// New creates a middlebox. Attach both sides with AttachLink before
// sending traffic through it.
func New(s *sim.Simulator, cfg Config, sink EventSink) *Middlebox {
	if sink == nil {
		panic("middlebox: sink must not be nil")
	}
	cfg = cfg.withDefaults()
	mb := &Middlebox{sim: s, cfg: cfg, sink: sink}
	for i := range mb.sides {
		mb.sides[i] = &side{
			ring:    ringbuf.New(cfg.RingSlots),
			tracker: seqtrack.New(),
		}
	}
	return mb
}

// Device returns the link.Device endpoint for the given side.
func (mb *Middlebox) Device(s Side) link.Device { return &sideDev{mb: mb, s: s} }

// AttachLink binds a side to its link (the middlebox transmits from the
// given link side).
func (mb *Middlebox) AttachLink(s Side, l *link.Link, fromA bool) {
	mb.sides[s].lnk = l
	mb.sides[s].fromA = fromA
}

func (mb *Middlebox) other(s Side) Side {
	if s == North {
		return South
	}
	return North
}

// receive handles one frame arriving on side s.
func (mb *Middlebox) receive(s Side, p *pkt.Packet) {
	sd := mb.sides[s]
	if p.Corrupt {
		return // gap detection recovers the flow
	}
	switch p.Kind {
	case pkt.KindLossNotify:
		mb.handleLossNotify(s, p)
		return
	case pkt.KindPFC:
		return
	}
	if p.HasSeqTag && !mb.cfg.DisableSeq {
		id := p.SeqTag
		p.HasSeqTag = false
		p.SeqTag = 0
		p.WireLen -= pkt.NetSeerTagLen
		if notif := sd.tracker.Observe(id); notif != nil {
			mb.sendLossNotify(s, *notif)
		}
	}
	mb.process(s, p)
}

// process runs the packet through the finite-capacity service stage and
// forwards it out the other side (principle 2: overload is an *event*
// with the victim flow, not just a counter).
func (mb *Middlebox) process(from Side, p *pkt.Packet) {
	if mb.queued+p.WireLen > mb.cfg.QueueBytes {
		mb.Overloaded++
		mb.report(fevent.Event{
			Type: fevent.TypeDrop, Flow: p.Flow,
			DropCode: fevent.DropMMUCongestion, // buffer exhaustion
			Count:    1, Hash: p.Flow.Hash(),
		})
		return
	}
	mb.queued += p.WireLen
	service := sim.Time(float64(p.WireLen*8) / mb.cfg.ServiceBps * 1e9)
	start := mb.sim.Now()
	if mb.busyUntil > start {
		start = mb.busyUntil
	}
	mb.busyUntil = start + service
	out := mb.other(from)
	mb.sim.At(mb.busyUntil, func() {
		mb.queued -= p.WireLen
		mb.Processed++
		mb.transmit(out, p)
	})
}

// transmit numbers and records the packet on the egress side, then sends.
func (mb *Middlebox) transmit(s Side, p *pkt.Packet) {
	sd := mb.sides[s]
	if sd.lnk == nil {
		return
	}
	if !mb.cfg.DisableSeq && (p.Kind == pkt.KindData || p.Kind == pkt.KindProbe) {
		id := sd.nextSeq
		sd.nextSeq++
		p.SeqTag = id
		p.HasSeqTag = true
		p.WireLen += pkt.NetSeerTagLen
		sd.ring.Record(id, p.Flow, p.WireLen)
		mb.drainOne(s)
	}
	sd.lnk.Send(sd.fromA, p)
}

func (mb *Middlebox) sendLossNotify(s Side, notif seqtrack.Notification) {
	sd := mb.sides[s]
	if sd.lnk == nil {
		return
	}
	payload := notif.AppendTo(nil)
	for i := 0; i < seqtrack.NotifyCopies; i++ {
		sd.lnk.Send(sd.fromA, &pkt.Packet{
			Kind: pkt.KindLossNotify, WireLen: pkt.MinEthernetFrame,
			Priority: 7, Payload: payload,
		})
	}
}

func (mb *Middlebox) handleLossNotify(s Side, p *pkt.Packet) {
	notif, err := seqtrack.DecodeNotification(p.Payload)
	if err != nil || mb.sides[s].lastGap == notif {
		return
	}
	sd := mb.sides[s]
	sd.lastGap = notif
	for id := notif.FromID; ; id++ {
		sd.pending = append(sd.pending, id)
		if id == notif.ToID {
			break
		}
	}
	for len(sd.pending) > 0 {
		mb.drainOne(s)
	}
}

func (mb *Middlebox) drainOne(s Side) {
	sd := mb.sides[s]
	if len(sd.pending) == 0 {
		return
	}
	id := sd.pending[0]
	sd.pending = sd.pending[1:]
	if e, ok := sd.ring.Lookup(id); ok {
		mb.Recovered++
		mb.report(fevent.Event{
			Type: fevent.TypeDrop, Flow: e.Flow,
			DropCode: fevent.DropInterSwitch,
			Count:    1, Hash: e.Flow.Hash(),
		})
	}
}

// report ships one event to the sink (principle 3).
func (mb *Middlebox) report(e fevent.Event) {
	e.SwitchID = mb.cfg.SwitchID
	e.Timestamp = mb.sim.Now()
	mb.sink.Deliver(&fevent.Batch{
		SwitchID:  mb.cfg.SwitchID,
		Timestamp: mb.sim.Now(),
		Events:    []fevent.Event{e},
	})
}
