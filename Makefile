GO ?= go

.PHONY: all check vet build test race fuzz fuzz-smoke bench bench-json bench-guard fmt-check clean \
	oracle oracle-fuzz-smoke oracle-cover obs obs-cover durability wal-fuzz-smoke wal-cover \
	fabric fabric-chaos fabric-cover sim-cover sketch-fuzz-smoke sketch-cover nightly-fuzz \
	trace trace-cover storagefault storagefault-cover

# check is the CI gate: vet, build everything, and run the full suite
# under the race detector (the concurrent collector sender must be
# race-clean).
all: check

check: vet build race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# fuzz runs the framing fuzz target beyond its checked-in seed corpus.
fuzz:
	$(GO) test -run '^$$' -fuzz FuzzReadFrame -fuzztime 20s ./internal/collector/

# fuzz-smoke is the CI variant: ~10s per fuzz target, starting from the
# seed corpora under */testdata/fuzz/ (regenerate them with
# `go run ./scripts/genfuzzcorpus`).
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz FuzzReadFrame -fuzztime 10s ./internal/collector/
	$(GO) test -run '^$$' -fuzz FuzzSketch -fuzztime 10s ./internal/sketch/
	$(GO) test -run '^$$' -fuzz FuzzWALReplay -fuzztime 10s ./internal/collector/wal/

# sketch-fuzz-smoke: ~10s of differential fuzzing of the sketch stage
# against its exact map-based oracle, from the seed corpus under
# internal/sketch/testdata/fuzz/.
sketch-fuzz-smoke:
	$(GO) test -run '^$$' -fuzz FuzzSketch -fuzztime 10s ./internal/sketch/

# sketch-cover fails if statement coverage of internal/sketch — the
# detection family the oracle's sketch claims ride on — drops below 85%.
sketch-cover:
	$(GO) test -count=1 -coverprofile=cover-sketch.out \
		-coverpkg=netseer/internal/sketch ./internal/sketch/
	$(GO) run ./scripts/covergate -profile cover-sketch.out -min 85 netseer/internal/sketch

# oracle runs the correctness-oracle scenario matrix: every scenario must
# satisfy all six invariant checkers, including the sketch differential
# claims and the TCP delivery replay (see internal/oracle and DESIGN.md
# §8/§13).
oracle:
	$(GO) test -count=1 ./internal/oracle/

# oracle-fuzz-smoke: ~10s of whole-pipeline coverage-guided fuzzing from
# the seed corpus under internal/oracle/testdata/fuzz/.
oracle-fuzz-smoke:
	$(GO) test -run '^$$' -fuzz FuzzPipeline -fuzztime 10s ./internal/oracle/

# oracle-cover fails if statement coverage of the oracle or the group
# cache drops below 85%.
oracle-cover:
	$(GO) test -count=1 -coverprofile=cover-oracle.out \
		-coverpkg=netseer/internal/oracle,netseer/internal/groupcache \
		./internal/oracle/ ./internal/groupcache/
	$(GO) run ./scripts/covergate -profile cover-oracle.out -min 85 \
		netseer/internal/oracle netseer/internal/groupcache

# obs runs the self-telemetry gate under the race detector: the
# instrument/registry/exposition unit suite, the netseerd-shaped
# end-to-end /metrics scrape with live TCP ingestion, the query-protocol
# stats verb and error-path accounting, and the testbed publish bridge.
obs:
	$(GO) test -race -count=1 ./internal/obs/
	$(GO) test -race -count=1 -run 'TestMetricsEndToEnd|TestQueryStats|TestQueryErrorPaths' ./internal/collector/
	$(GO) test -race -count=1 -run 'TestRegisterObsPublishesPipeline' ./internal/experiments/

# durability runs the crash-safety gate under the race detector: the WAL
# unit suite, the SIGKILL kill-recover chaos loop (acked events survive
# arbitrary collector crashes), multi-endpoint failover without double
# delivery, and the overload ladder (slow acks -> shed-to-log, shed
# events recoverable after restart).
durability:
	$(GO) test -race -count=1 ./internal/collector/wal/
	$(GO) test -race -count=1 -run \
		'TestKillRecoverAckedNeverLost|TestFailoverNoDoubleDeliver|TestShedEventsRecoverableAfterRestart|TestServerSlowWatermarkDelaysAcks|TestAdmission|TestChaos' \
		./internal/collector/

# fabric runs the sharded-collector gate under the race detector: the
# ring/records/handoff unit suites, the coordinator wire protocol, and
# the exactly-once fan-out audits, plus the fault-injection conn suite
# the partition scenarios build on.
fabric:
	$(GO) test -race -count=1 ./internal/collector/fabric/
	$(GO) test -race -count=1 ./internal/faultconn/

# fabric-chaos runs just the membership-churn chaos matrix: shard add
# under load, demote/retire under load, a one-way partition mid-ingest,
# a SIGKILLed shard mid-rebalance, and coordinator restarts in both
# two-phase-record phases. FABRIC_CHAOS narrows the matrix to one
# scenario (e.g. make fabric-chaos FABRIC_CHAOS=TestShardSIGKILLMidRebalance).
FABRIC_CHAOS ?= TestShardAddUnderLoad|TestShardLeaveRetireUnderLoad|TestAsymmetricPartitionDuringIngest|TestShardSIGKILLMidRebalance|TestHandoffSurvivesRestartThenCompletes|TestCoordinatorRestartAbortsStaging
fabric-chaos:
	$(GO) test -race -count=1 -run '$(FABRIC_CHAOS)' ./internal/collector/fabric/

# fabric-cover fails if statement coverage of internal/collector/fabric
# drops below 85%.
fabric-cover:
	$(GO) test -count=1 -coverprofile=cover-fabric.out \
		-coverpkg=netseer/internal/collector/fabric ./internal/collector/fabric/
	$(GO) run ./scripts/covergate -profile cover-fabric.out -min 85 \
		netseer/internal/collector/fabric

# trace runs the distributed-tracing gate under the race detector: the
# span-ring/recorder/context unit suite (including the wraparound and
# reader-snapshot property tests), the v3 traced-frame codec and
# mixed-version WAL replay, the exemplar contract, and the end-to-end
# 3-shard assembly + fleet health plane (a sampled batch's spans pulled
# back together across the fabric, /fleet flipping on a dead member).
trace:
	$(GO) test -race -count=1 ./internal/obs/trace/
	$(GO) test -race -count=1 -run 'TestTracedFrame|TestMixedVersionWALReplay|TestHistogramExemplar' \
		./internal/collector/ ./internal/obs/
	$(GO) test -race -count=1 -run 'TestTraceAssemblyAcrossFabric|TestFleetStatusHealthyAndDeadShard|TestShardSIGKILLMidRebalance' \
		./internal/collector/fabric/

# trace-cover fails if statement coverage of internal/obs/trace drops
# below 85%.
trace-cover:
	$(GO) test -count=1 -coverprofile=cover-trace.out \
		-coverpkg=netseer/internal/obs/trace ./internal/obs/trace/
	$(GO) run ./scripts/covergate -profile cover-trace.out -min 85 netseer/internal/obs/trace

# wal-fuzz-smoke: ~8s per WAL fuzz target (record reader, whole-segment
# replay), starting from the seed corpus under
# internal/collector/wal/testdata/fuzz/ (regenerate it with
# `go run ./scripts/genfuzzcorpus`).
wal-fuzz-smoke:
	$(GO) test -run '^$$' -fuzz FuzzWALRecord -fuzztime 8s ./internal/collector/wal/
	$(GO) test -run '^$$' -fuzz FuzzWALReplay -fuzztime 8s ./internal/collector/wal/

# storagefault runs the disk-fault gate under the race detector: the
# deterministic fault-filesystem unit suite, the WAL fail-stop and
# scrub/quarantine suite, and the end-to-end disk-fault chaos matrix
# (ENOSPC mid-ingest, fsync EIO then power cut, torn write under
# rotation, bare power cut, bit rot then scrub, and the fabric's
# dying-destination handoff + /fleet visibility scenarios).
storagefault:
	$(GO) test -race -count=1 ./internal/faultfs/
	$(GO) test -race -count=1 -run 'TestRotateFsyncFailure|TestSyncFsyncFailure|TestWaitDurableWaiters|TestENOSPC|TestPowerCut|TestReplaySkips|TestScrub|TestTornWrite' \
		./internal/collector/wal/
	$(GO) test -race -count=1 -run 'TestStorageFault' \
		./internal/collector/ ./internal/collector/fabric/

# storagefault-cover fails if statement coverage of internal/faultfs or
# internal/collector/wal drops below 85% (the collector chaos matrix
# feeds the profile alongside both unit suites).
storagefault-cover:
	$(GO) test -count=1 -coverprofile=cover-storagefault.out \
		-coverpkg=netseer/internal/faultfs,netseer/internal/collector/wal \
		./internal/faultfs/ ./internal/collector/wal/ ./internal/collector/
	$(GO) run ./scripts/covergate -profile cover-storagefault.out -min 85 \
		netseer/internal/faultfs netseer/internal/collector/wal

# wal-cover fails if statement coverage of internal/collector/wal drops
# below 85% (the collector suite exercises the log end-to-end, so both
# packages' tests feed the profile).
wal-cover:
	$(GO) test -count=1 -coverprofile=cover-wal.out \
		-coverpkg=netseer/internal/collector/wal \
		./internal/collector/wal/ ./internal/collector/
	$(GO) run ./scripts/covergate -profile cover-wal.out -min 85 \
		netseer/internal/collector/wal

# obs-cover fails if statement coverage of internal/obs drops below 85%.
obs-cover:
	$(GO) test -count=1 -coverprofile=cover-obs.out -coverpkg=netseer/internal/obs ./internal/obs/
	$(GO) run ./scripts/covergate -profile cover-obs.out -min 85 netseer/internal/obs

# sim-cover fails if statement coverage of internal/sim — the event core
# plus the conservative-lookahead sharded engine — drops below 85%.
sim-cover:
	$(GO) test -count=1 -coverprofile=cover-sim.out -coverpkg=netseer/internal/sim ./internal/sim/
	$(GO) run ./scripts/covergate -profile cover-sim.out -min 85 netseer/internal/sim

# nightly-fuzz: the scheduled deep fuzz — 10 minutes of whole-pipeline
# coverage-guided fuzzing from the oracle's seed corpus (the nightly
# workflow runs it; the per-PR smoke stays at 10s).
nightly-fuzz:
	$(GO) test -run '^$$' -fuzz FuzzPipeline -fuzztime 10m ./internal/oracle/
	$(GO) test -run '^$$' -fuzz FuzzSketch -fuzztime 5m ./internal/sketch/
	$(GO) test -run '^$$' -fuzz FuzzWALReplay -fuzztime 5m ./internal/collector/wal/

bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

# bench-json regenerates the BENCH_*.json perf artifacts in the repo root.
# BENCH_SUITE narrows regeneration to one suite (hotpath, parallel,
# durability) — the CI bench matrix runs one suite per job; BENCH_COUNT is
# how many rounds each suite runs (the best round per metric is kept and
# the per-run spread recorded, see benchjson.BestOf).
BENCH_SUITE ?= all
BENCH_COUNT ?= 3
bench-json:
	$(GO) run ./cmd/repro -bench-json -bench-out . -parallel 4 \
		-bench-suite $(BENCH_SUITE) -bench-count $(BENCH_COUNT)

# bench-guard regenerates the artifacts and fails on a regression against
# the checked-in baseline (any allocs/op increase; >25% events/sec drop;
# parallel or sharded output not bit-identical to sequential; sharded
# speedup < 1.5x on runners with >= 4 CPUs).
bench-guard: bench-json
	$(GO) run ./scripts/benchdiff -baseline bench/baseline -current . -suite $(BENCH_SUITE)

# fmt-check fails if any file needs gofmt.
fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

clean:
	$(GO) clean ./...
