GO ?= go

.PHONY: all check vet build test race fuzz bench clean

# check is the CI gate: vet, build everything, and run the full suite
# under the race detector (the concurrent collector sender must be
# race-clean).
all: check

check: vet build race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# fuzz runs the framing fuzz target beyond its checked-in seed corpus.
fuzz:
	$(GO) test -run '^$$' -fuzz FuzzReadFrame -fuzztime 20s ./internal/collector/

bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

clean:
	$(GO) clean ./...
