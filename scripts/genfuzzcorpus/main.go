// Command genfuzzcorpus regenerates the checked-in seed corpora for
// FuzzReadFrame (internal/collector/testdata/fuzz/FuzzReadFrame/),
// FuzzWALRecord and FuzzWALReplay
// (internal/collector/wal/testdata/fuzz/...).
// The seeds cover every framing-layer rejection branch — truncations,
// CRC corruption, length lies, record-count lies — plus valid inputs, so
// `make fuzz-smoke` and `make wal-fuzz-smoke` start from interesting
// inputs instead of empty noise.
//
// Run from the repo root: go run ./scripts/genfuzzcorpus
package main

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"

	"netseer/internal/collector"
	"netseer/internal/collector/wal"
	"netseer/internal/fevent"
	"netseer/internal/obs/trace"
	"netseer/internal/pkt"
)

func main() {
	writeFrameSeeds()
	writeWALRecordSeeds()
	writeWALReplaySeeds()
	writeSketchSeeds()
}

func writeFrameSeeds() {
	dir := filepath.Join("internal", "collector", "testdata", "fuzz", "FuzzReadFrame")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		fatal(err)
	}

	frame := func(seq uint64, events ...fevent.Event) []byte {
		b := &fevent.Batch{SwitchID: 5, Timestamp: 77, Events: events, Seq: seq}
		var buf bytes.Buffer
		if err := collector.WriteFrame(&buf, b); err != nil {
			fatal(err)
		}
		return buf.Bytes()
	}
	tracedFrame := func(seq uint64, tc trace.Context, events ...fevent.Event) []byte {
		b := &fevent.Batch{SwitchID: 5, Timestamp: 77, Events: events, Seq: seq, Trace: tc}
		var buf bytes.Buffer
		if err := collector.WriteFrame(&buf, b); err != nil {
			fatal(err)
		}
		return buf.Bytes()
	}
	flow := pkt.FlowKey{SrcIP: pkt.IP(10, 0, 0, 3), DstIP: pkt.IP(10, 0, 1, 4),
		SrcPort: 33001, DstPort: 80, Proto: pkt.ProtoTCP}
	ev := fevent.Event{Type: fevent.TypeCongestion, Flow: flow, Hash: flow.Hash(),
		SwitchID: 5, Timestamp: 77, QueueLatencyUs: 12}
	drop := fevent.Event{Type: fevent.TypeDrop, Flow: flow, Hash: flow.Hash(),
		SwitchID: 5, Timestamp: 78, DropCode: fevent.DropMMUCongestion}

	whole := frame(9, ev)

	mutate := func(src []byte, f func([]byte)) []byte {
		out := append([]byte(nil), src...)
		f(out)
		return out
	}

	seeds := map[string][]byte{
		"valid_one_event":  whole,
		"valid_two_events": frame(10, ev, drop),
		"valid_empty":      frame(0),
		"truncated_header": whole[:3],
		"truncated_body":   whole[:len(whole)-2],
		"trailing_byte":    append(append([]byte(nil), whole...), 0x01),
		// CRC field bytes 4..8 cover seq+body; flip one bit.
		"corrupt_crc": mutate(whole, func(b []byte) { b[5] ^= 0x40 }),
		// Length claims more than MaxFrame.
		"oversize_length": {0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0},
		// Length lies small: claims fewer bytes than the body carries.
		"length_lies_small": mutate(whole, func(b []byte) {
			binary.BigEndian.PutUint32(b[0:4], binary.BigEndian.Uint32(b[0:4])-fevent.RecordLen)
		}),
		// Body's record count field inflated past the actual payload.
		"record_count_lie": mutate(whole, func(b []byte) { corruptRecordCount(b) }),
		// Valid framing around an undefined event type.
		"invalid_event_type": frame(11, fevent.Event{Type: 0x7f, Flow: flow, Hash: flow.Hash(),
			SwitchID: 5, Timestamp: 79}),
		"zero_noise": bytes.Repeat([]byte{0}, 64),
	}

	// v3 traced frames: the old seeds above keep sequence bit 63 clear
	// (the v2 shape); these set it and carry the 17-byte trace context,
	// so the corpus spans both frame versions the decoder must keep
	// apart — on the wire and in mixed-version WAL replays.
	ctx := trace.Context{TraceID: 0x53a0c6e1b20f4d77, Parent: 0x9e3779b97f4a7c15, Flags: trace.FlagSampled}
	traced := tracedFrame(12, ctx, ev)
	seeds["valid_traced"] = traced
	seeds["valid_traced_unsampled"] = tracedFrame(13, trace.Context{TraceID: 21}, ev, drop)
	// Context torn mid-way: length says traced, payload too short for it.
	seeds["traced_torn_ctx"] = traced[:20]
	// Version bit set but the context's trace ID field is zero; the CRC
	// is recomputed so the lie reaches DecodePayload.
	seeds["traced_zero_id"] = mutate(traced, func(b []byte) {
		for i := 16; i < 24; i++ {
			b[i] = 0
		}
		binary.BigEndian.PutUint32(b[4:8], crc32.ChecksumIEEE(b[8:]))
	})

	writeSeeds(dir, seeds)
}

// writeWALRecordSeeds covers the WAL record reader — the exact code path
// crash recovery runs over a possibly-torn segment tail. Layout per
// record: [4B length][4B CRC-32][payload].
func writeWALRecordSeeds() {
	dir := filepath.Join("internal", "collector", "wal", "testdata", "fuzz", "FuzzWALRecord")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		fatal(err)
	}

	one := wal.AppendRecord(nil, []byte("wal-record-payload"))
	var three []byte
	for i := 0; i < 3; i++ {
		three = wal.AppendRecord(three, []byte(fmt.Sprintf("wal-record-%d", i)))
	}

	// Frame payloads as the durable server actually logs them, one per
	// frame version plus a mixed-version log — what recovery replays
	// after a deployment that upgraded exporters mid-log.
	framePayload := func(seq uint64, tc trace.Context) []byte {
		var buf bytes.Buffer
		b := &fevent.Batch{SwitchID: 3, Timestamp: 55, Seq: seq, Trace: tc}
		if err := collector.WriteFrame(&buf, b); err != nil {
			fatal(err)
		}
		return buf.Bytes()[8:] // strip length+CRC: the WAL stores the payload
	}
	mixedLog := wal.AppendRecord(nil, framePayload(41, trace.Context{}))
	mixedLog = wal.AppendRecord(mixedLog,
		framePayload(42, trace.Context{TraceID: 0x53a0c6e1b20f4d77, Flags: trace.FlagSampled}))

	mutate := func(src []byte, f func([]byte)) []byte {
		out := append([]byte(nil), src...)
		f(out)
		return out
	}

	seeds := map[string][]byte{
		"valid_one_record":    one,
		"valid_three_records": three,
		"valid_empty_payload": wal.AppendRecord(nil, nil),
		// A crash can tear anywhere: mid-header, mid-payload, or right
		// after a whole record followed by a torn next header.
		"torn_header":            one[:5],
		"torn_payload":           one[:len(one)-3],
		"valid_then_torn":        append(append([]byte(nil), one...), three[:6]...),
		"corrupt_crc":            mutate(one, func(b []byte) { b[6] ^= 0x10 }),
		"corrupt_payload":        mutate(one, func(b []byte) { b[len(b)-1] ^= 0x01 }),
		"truncated_length_word":  {0, 0},
		"oversize_length":        {0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0},
		"length_exceeds_payload": mutate(one, func(b []byte) { binary.BigEndian.PutUint32(b[0:4], 200) }),
		"zero_noise":             bytes.Repeat([]byte{0}, 64),
		"frame_payload_v2":       wal.AppendRecord(nil, framePayload(9, trace.Context{})),
		"frame_payload_traced": wal.AppendRecord(nil,
			framePayload(10, trace.Context{TraceID: 7, Parent: 9, Flags: trace.FlagSampled})),
		"frame_payload_mixed_versions": mixedLog,
	}
	writeSeeds(dir, seeds)
}

// writeWALReplaySeeds covers the whole-segment replay fuzzer
// (FuzzWALReplay), which plants each seed as a crash-tail segment, as a
// sealed mid-log segment followed by a valid one, and as a quarantined
// file. The shapes mirror what a dying disk actually leaves behind: a
// clean segment, a torn tail, bit rot in the middle of a sealed file,
// and an empty rotation stub.
func writeWALReplaySeeds() {
	dir := filepath.Join("internal", "collector", "wal", "testdata", "fuzz", "FuzzWALReplay")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		fatal(err)
	}

	var clean []byte
	for i := 0; i < 5; i++ {
		clean = wal.AppendRecord(clean, []byte(fmt.Sprintf("segment-record-%d", i)))
	}
	rotted := append([]byte(nil), clean...)
	rotted[len(rotted)/2] ^= 0xFF // one flipped bit's worth of rot, mid-file
	headerRot := append([]byte(nil), clean...)
	headerRot[0] ^= 0x80 // rot in a length word: framing desyncs immediately

	seeds := map[string][]byte{
		"valid_segment":      clean,
		"torn_tail":          clean[:len(clean)-3],
		"mid_segment_rot":    rotted,
		"length_word_rot":    headerRot,
		"empty_segment":      {},
		"zero_noise":         bytes.Repeat([]byte{0}, 64),
		"single_record":      wal.AppendRecord(nil, []byte("lone-record")),
		"oversize_then_gone": {0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0},
	}
	writeSeeds(dir, seeds)
}

// writeSketchSeeds covers the sketch-stage differential fuzzer
// (internal/sketch FuzzSketch). Each byte pair is one packet: byte 0
// packs the flow index (low nibble) and egress port (top two bits),
// byte 1 packs the size nibble and a time-advance flag — so the seeds
// steer the interesting regimes directly: one flow hammered past the
// heavy-hitter threshold, more flows than top-K counters (eviction
// churn), byte bursts dense enough to cross the spike threshold, and
// time jumps that roll the aggregate window.
func writeSketchSeeds() {
	dir := filepath.Join("internal", "sketch", "testdata", "fuzz", "FuzzSketch")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		fatal(err)
	}

	op := func(flow, port, size byte, advance bool) []byte {
		b1 := size << 4
		if advance {
			b1 |= 1
		}
		return []byte{flow&0x0f | port<<6, b1}
	}
	stream := func(ops ...[]byte) []byte {
		var out []byte
		for _, o := range ops {
			out = append(out, o...)
		}
		return out
	}
	repeatOp := func(o []byte, n int) [][]byte {
		ops := make([][]byte, n)
		for i := range ops {
			ops[i] = o
		}
		return ops
	}

	var churn [][]byte // 16 flows round-robin over a 4-counter table
	for i := 0; i < 64; i++ {
		churn = append(churn, op(byte(i), byte(i)&3, 2, false))
	}
	var spike [][]byte // max-size packets on one port, no time advance
	for i := 0; i < 24; i++ {
		spike = append(spike, op(1, 3, 0x0f, false))
	}
	var windows [][]byte // every packet jumps time: repeated window rolls
	for i := 0; i < 32; i++ {
		windows = append(windows, op(byte(i), 1, 0x0f, true))
	}

	seeds := map[string][]byte{
		"single_packet":    op(0, 0, 1, false),
		"heavy_hitter":     stream(repeatOp(op(3, 2, 1, false), 40)...),
		"topk_churn":       stream(churn...),
		"spike_one_window": stream(spike...),
		"window_rolls":     stream(windows...),
		"mixed": stream(append(append(churn, spike...),
			op(9, 0, 7, true), op(9, 0, 7, false))...),
		"zero_noise": bytes.Repeat([]byte{0}, 64),
	}
	writeSeeds(dir, seeds)
}

func writeSeeds(dir string, seeds map[string][]byte) {
	for name, data := range seeds {
		path := filepath.Join(dir, name)
		content := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", data)
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			fatal(err)
		}
		fmt.Println("wrote", path)
	}
}

// corruptRecordCount bumps the batch body's event-count field. The frame
// layout is [4B length][4B CRC][8B seq][batch body] and the batch header
// is switchID(2) timestamp(8) count(2), so the count sits at frame offset
// 8+8+10. The CRC is recomputed so the lie reaches the batch decoder
// instead of being caught by the checksum.
func corruptRecordCount(b []byte) {
	body := b[16:]
	cnt := binary.BigEndian.Uint16(body[10:12])
	binary.BigEndian.PutUint16(body[10:12], cnt+3)
	binary.BigEndian.PutUint32(b[4:8], crc32.ChecksumIEEE(b[8:]))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "genfuzzcorpus:", err)
	os.Exit(1)
}
