// Command covergate parses a Go -coverprofile and fails if any named
// package's statement coverage is below the floor. CI uses it to keep the
// correctness oracle and the group cache honest:
//
//	go test -coverprofile=cover.out -coverpkg=<pkgs> <tests>
//	go run ./scripts/covergate -profile cover.out -min 85 \
//	    netseer/internal/oracle netseer/internal/groupcache
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"path"
	"strconv"
	"strings"
)

// pkgCov accumulates statement counts for one package.
type pkgCov struct {
	total   int
	covered int
}

func (p pkgCov) percent() float64 {
	if p.total == 0 {
		return 0
	}
	return 100 * float64(p.covered) / float64(p.total)
}

// parseProfile reads a coverprofile and returns per-package statement
// coverage. Profile lines look like:
//
//	netseer/internal/oracle/checkers.go:186.44,190.3 2 1
//
// i.e. file:startLine.col,endLine.col numStatements hitCount. When several
// test binaries share one profile (go test pkgA pkgB -coverprofile=x with
// -coverpkg), the same block appears once per binary — usually hit in one
// section and zero in the others — so blocks are merged by location with
// their hit counts summed before any percentage is computed.
func parseProfile(r io.Reader) (map[string]*pkgCov, error) {
	type block struct {
		stmts int
		hits  int
	}
	blocks := make(map[string]*block)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "mode:") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 3 {
			return nil, fmt.Errorf("covergate: malformed profile line %q", line)
		}
		if !strings.Contains(fields[0], ":") {
			return nil, fmt.Errorf("covergate: malformed location %q", fields[0])
		}
		stmts, err := strconv.Atoi(fields[1])
		if err != nil {
			return nil, fmt.Errorf("covergate: bad statement count in %q: %v", line, err)
		}
		hits, err := strconv.Atoi(fields[2])
		if err != nil {
			return nil, fmt.Errorf("covergate: bad hit count in %q: %v", line, err)
		}
		b := blocks[fields[0]]
		if b == nil {
			blocks[fields[0]] = &block{stmts: stmts, hits: hits}
		} else {
			b.hits += hits
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	out := make(map[string]*pkgCov)
	for loc, b := range blocks {
		file, _, _ := strings.Cut(loc, ":")
		pkg := path.Dir(file)
		pc := out[pkg]
		if pc == nil {
			pc = &pkgCov{}
			out[pkg] = pc
		}
		pc.total += b.stmts
		if b.hits > 0 {
			pc.covered += b.stmts
		}
	}
	return out, nil
}

// gate checks every required package against the floor, returning one
// line per package and whether all passed. Packages absent from the
// profile fail (no data means no coverage).
func gate(cov map[string]*pkgCov, pkgs []string, min float64) (lines []string, ok bool) {
	ok = true
	for _, pkg := range pkgs {
		pc := cov[pkg]
		if pc == nil {
			lines = append(lines, fmt.Sprintf("FAIL %s: no coverage data in profile", pkg))
			ok = false
			continue
		}
		pct := pc.percent()
		if pct < min {
			lines = append(lines, fmt.Sprintf("FAIL %s: %.1f%% statement coverage, floor %.0f%%", pkg, pct, min))
			ok = false
		} else {
			lines = append(lines, fmt.Sprintf("ok   %s: %.1f%% statement coverage (floor %.0f%%)", pkg, pct, min))
		}
	}
	return lines, ok
}

func main() {
	profile := flag.String("profile", "cover.out", "coverprofile to parse")
	min := flag.Float64("min", 85, "minimum statement coverage percent per package")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "covergate: no packages named")
		os.Exit(2)
	}

	f, err := os.Open(*profile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "covergate:", err)
		os.Exit(1)
	}
	defer f.Close()
	cov, err := parseProfile(f)
	if err != nil {
		fmt.Fprintln(os.Stderr, "covergate:", err)
		os.Exit(1)
	}
	lines, ok := gate(cov, flag.Args(), *min)
	for _, l := range lines {
		fmt.Println(l)
	}
	if !ok {
		os.Exit(1)
	}
}
