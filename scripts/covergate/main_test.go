package main

import (
	"strings"
	"testing"
)

const sampleProfile = `mode: set
netseer/internal/oracle/checkers.go:10.2,12.3 2 1
netseer/internal/oracle/checkers.go:14.2,20.3 4 0
netseer/internal/oracle/harness.go:5.2,9.3 4 1
netseer/internal/groupcache/groupcache.go:8.2,11.3 3 1
netseer/internal/groupcache/groupcache.go:13.2,15.3 1 1
`

func TestParseProfilePerPackage(t *testing.T) {
	cov, err := parseProfile(strings.NewReader(sampleProfile))
	if err != nil {
		t.Fatal(err)
	}
	oracle := cov["netseer/internal/oracle"]
	if oracle == nil || oracle.total != 10 || oracle.covered != 6 {
		t.Errorf("oracle coverage = %+v, want 6/10", oracle)
	}
	gc := cov["netseer/internal/groupcache"]
	if gc == nil || gc.total != 4 || gc.covered != 4 {
		t.Errorf("groupcache coverage = %+v, want 4/4", gc)
	}
}

// TestParseProfileMergesDuplicateBlocks: a multi-binary profile repeats
// every block once per test binary; a block hit by any binary is covered
// and its statements count once.
func TestParseProfileMergesDuplicateBlocks(t *testing.T) {
	profile := `mode: set
netseer/internal/oracle/a.go:1.2,3.4 5 1
netseer/internal/oracle/a.go:5.2,7.4 5 0
mode: set
netseer/internal/oracle/a.go:1.2,3.4 5 0
netseer/internal/oracle/a.go:5.2,7.4 5 0
`
	cov, err := parseProfile(strings.NewReader(profile))
	if err != nil {
		t.Fatal(err)
	}
	oracle := cov["netseer/internal/oracle"]
	if oracle == nil || oracle.total != 10 || oracle.covered != 5 {
		t.Errorf("merged coverage = %+v, want 5/10", oracle)
	}
}

func TestParseProfileRejectsGarbage(t *testing.T) {
	for _, bad := range []string{
		"not a profile line\n",
		"file.go:1.2,3.4 x 1\n",
		"file.go:1.2,3.4 2 y\n",
	} {
		if _, err := parseProfile(strings.NewReader(bad)); err == nil {
			t.Errorf("parseProfile accepted %q", bad)
		}
	}
}

func TestGateEnforcesFloorPerPackage(t *testing.T) {
	cov, err := parseProfile(strings.NewReader(sampleProfile))
	if err != nil {
		t.Fatal(err)
	}
	// oracle is at 60%: an 85% floor must fail, a 50% floor must pass.
	lines, ok := gate(cov, []string{"netseer/internal/oracle", "netseer/internal/groupcache"}, 85)
	if ok {
		t.Errorf("gate passed with oracle at 60%%: %q", lines)
	}
	if !strings.Contains(strings.Join(lines, "\n"), "FAIL netseer/internal/oracle") {
		t.Errorf("failure does not name the offending package: %q", lines)
	}
	if _, ok := gate(cov, []string{"netseer/internal/oracle", "netseer/internal/groupcache"}, 50); !ok {
		t.Error("gate failed with every package above a 50% floor")
	}
}

func TestGateFailsOnMissingPackage(t *testing.T) {
	cov, err := parseProfile(strings.NewReader(sampleProfile))
	if err != nil {
		t.Fatal(err)
	}
	lines, ok := gate(cov, []string{"netseer/internal/nosuchpkg"}, 1)
	if ok {
		t.Errorf("gate passed for a package with no profile data: %q", lines)
	}
}
