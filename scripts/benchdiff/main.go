// Command benchdiff compares freshly generated BENCH_*.json artifacts
// against the checked-in baseline (bench/baseline/) and exits non-zero on
// a hot-path regression. CI runs it after `make bench-json`.
//
// Policy:
//   - allocs/op is machine-independent: any increase over baseline fails.
//   - hot-path events/sec may drift with the runner; only a drop beyond
//     -speed-tolerance (default 25%) fails.
//   - the parallel report must attest digest identity (parallelism never
//     changes results) and, on machines with enough cores, a speedup of
//     at least -min-speedup over the sequential run.
//
// Usage:
//
//	benchdiff [-baseline bench/baseline] [-current .]
//	          [-speed-tolerance 0.25] [-min-speedup 1.5]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"netseer/internal/benchjson"
)

func main() {
	baseline := flag.String("baseline", "bench/baseline", "directory with baseline BENCH_*.json")
	current := flag.String("current", ".", "directory with freshly generated BENCH_*.json")
	speedTol := flag.Float64("speed-tolerance", 0.25, "max fractional events/sec drop vs baseline")
	minSpeedup := flag.Float64("min-speedup", 1.5, "min parallel speedup (enforced only with >=4 workers on >=4 CPUs)")
	flag.Parse()

	var failures []string
	fail := func(format string, args ...any) {
		failures = append(failures, fmt.Sprintf(format, args...))
	}

	base, err := benchjson.ReadFile(filepath.Join(*baseline, "BENCH_hotpath.json"))
	if err != nil {
		fatal(err)
	}
	cur, err := benchjson.ReadFile(filepath.Join(*current, "BENCH_hotpath.json"))
	if err != nil {
		fatal(err)
	}
	for _, bm := range base.Metrics {
		cm, ok := cur.Metric(bm.Name)
		if !ok {
			fail("%s: present in baseline but missing from current run", bm.Name)
			continue
		}
		if cm.AllocsPerOp > bm.AllocsPerOp {
			fail("%s: allocs/op grew %v -> %v (any increase fails)", bm.Name, bm.AllocsPerOp, cm.AllocsPerOp)
		}
		if bm.EventsPerSec > 0 && cm.EventsPerSec < bm.EventsPerSec*(1-*speedTol) {
			fail("%s: events/sec dropped %.3g -> %.3g (tolerance %.0f%%)",
				bm.Name, bm.EventsPerSec, cm.EventsPerSec, *speedTol*100)
		}
	}

	par, err := benchjson.ReadFile(filepath.Join(*current, "BENCH_parallel.json"))
	if err != nil {
		fatal(err)
	}
	sp, ok := par.Metric("parallel/speedup")
	if !ok {
		fail("BENCH_parallel.json: missing parallel/speedup metric")
	} else {
		if sp.Extra["digests_match"] != 1 {
			fail("parallel run is not bit-identical to sequential (digests_match=%v)", sp.Extra["digests_match"])
		}
		workers := sp.Extra["workers"]
		if workers >= 4 && par.NumCPU >= 4 && sp.Extra["speedup"] < *minSpeedup {
			fail("parallel speedup %.2fx at %.0f workers on %d CPUs; need >= %.2fx",
				sp.Extra["speedup"], workers, par.NumCPU, *minSpeedup)
		} else {
			fmt.Printf("parallel: %.2fx speedup at %.0f workers on %d CPUs (digests match)\n",
				sp.Extra["speedup"], workers, par.NumCPU)
		}
	}

	if len(failures) > 0 {
		for _, f := range failures {
			fmt.Fprintln(os.Stderr, "REGRESSION:", f)
		}
		os.Exit(1)
	}
	fmt.Printf("benchdiff: %d hot-path metrics within budget (allocs/op: no increase; events/sec tolerance %.0f%%)\n",
		len(base.Metrics), *speedTol*100)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchdiff:", err)
	os.Exit(1)
}
