// Command benchdiff compares freshly generated BENCH_*.json artifacts
// against the checked-in baseline (bench/baseline/) and exits non-zero on
// a hot-path regression. CI runs it after `make bench-json`; the bench
// matrix runs one suite per job via -suite.
//
// Policy:
//   - allocs/op is machine-independent: any increase over baseline fails,
//     and metrics under hotpath/ must be exactly zero — the simulated
//     pipeline's per-event paths are pinned alloc-free, so even a
//     baseline that drifted up would not excuse a non-zero value.
//   - hot-path events/sec may drift with the runner; only a drop beyond
//     -speed-tolerance (default 25%) fails. Artifacts are the best of
//     -bench-count rounds (see benchjson.BestOf); failure messages print
//     the per-run spread so a flaky runner is distinguishable from a real
//     regression.
//   - the parallel report must attest digest identity twice — across the
//     point fan-out AND for the sharded engine against its sequential
//     reference (parallelism never changes results) — and, on machines
//     with enough cores (>=4 workers on >=4 CPUs), a speedup of at least
//     -min-speedup for both.
//   - the durability report must attest that group-committed WAL ingest
//     stays within its overhead budget of the in-memory baseline (the
//     comparison is machine-relative, so no baseline file is needed).
//
// Usage:
//
//	benchdiff [-baseline bench/baseline] [-current .]
//	          [-suite all|hotpath|parallel|durability]
//	          [-speed-tolerance 0.25] [-min-speedup 1.5]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"netseer/internal/benchjson"
)

// options parameterizes one comparison run (mirrors the flags).
type options struct {
	baseline   string  // directory with baseline BENCH_*.json
	current    string  // directory with freshly generated BENCH_*.json
	suite      string  // which suite(s) to gate: all, hotpath, parallel, durability
	speedTol   float64 // max fractional events/sec drop vs baseline
	minSpeedup float64 // min parallel speedup (>=4 workers on >=4 CPUs)
}

// spread renders a metric's best-of-N annotation (benchjson.BestOf) for
// failure messages: how many rounds ran and how far apart they landed in
// the metric's primary dimension. Empty for single-round artifacts.
func spread(m benchjson.Metric) string {
	runs := m.Extra["runs"]
	if runs < 2 {
		return ""
	}
	return fmt.Sprintf(" [best of %.0f runs; per-run spread %.4g..%.4g]",
		runs, m.Extra["spread_min"], m.Extra["spread_max"])
}

// compare applies the gating policy. failures are regressions (any means
// the build must fail), info are human-oriented progress lines, err is a
// fatal setup problem (missing or unreadable artifact).
func compare(o options) (failures, info []string, err error) {
	fail := func(format string, args ...any) {
		failures = append(failures, fmt.Sprintf(format, args...))
	}
	want := func(suite string) bool { return o.suite == "all" || o.suite == suite }

	if want("hotpath") {
		base, err := benchjson.ReadFile(filepath.Join(o.baseline, "BENCH_hotpath.json"))
		if err != nil {
			return nil, nil, err
		}
		cur, err := benchjson.ReadFile(filepath.Join(o.current, "BENCH_hotpath.json"))
		if err != nil {
			return nil, nil, err
		}
		// The zero-alloc pin covers every current hotpath/ metric, including
		// ones the baseline predates.
		for _, cm := range cur.Metrics {
			if strings.HasPrefix(cm.Name, "hotpath/") && cm.AllocsPerOp != 0 {
				fail("%s: allocs/op = %v; hotpath/ metrics must be exactly 0%s",
					cm.Name, cm.AllocsPerOp, spread(cm))
			}
		}
		for _, bm := range base.Metrics {
			cm, ok := cur.Metric(bm.Name)
			if !ok {
				fail("%s: present in baseline but missing from current run", bm.Name)
				continue
			}
			if cm.AllocsPerOp > bm.AllocsPerOp {
				fail("%s: allocs/op grew %v -> %v (any increase fails)", bm.Name, bm.AllocsPerOp, cm.AllocsPerOp)
			}
			if bm.EventsPerSec > 0 && cm.EventsPerSec < bm.EventsPerSec*(1-o.speedTol) {
				fail("%s: events/sec dropped %.3g -> %.3g (tolerance %.0f%%)%s",
					bm.Name, bm.EventsPerSec, cm.EventsPerSec, o.speedTol*100, spread(cm))
			}
		}
		if len(failures) == 0 {
			info = append(info, fmt.Sprintf("hotpath: %d baseline metrics within budget (allocs/op: no increase, hotpath/ pinned 0; events/sec tolerance %.0f%%)",
				len(base.Metrics), o.speedTol*100))
		}
	}

	if want("parallel") {
		par, err := benchjson.ReadFile(filepath.Join(o.current, "BENCH_parallel.json"))
		if err != nil {
			return nil, nil, err
		}
		gateSpeedup := func(name, what string) {
			m, ok := par.Metric(name)
			if !ok {
				fail("BENCH_parallel.json: missing %s metric", name)
				return
			}
			if m.Extra["digests_match"] != 1 {
				fail("%s is not bit-identical to sequential (digests_match=%v)", what, m.Extra["digests_match"])
			}
			workers := m.Extra["workers"]
			if workers >= 4 && par.NumCPU >= 4 && m.Extra["speedup"] < o.minSpeedup {
				fail("%s speedup %.2fx at %.0f workers on %d CPUs; need >= %.2fx%s",
					what, m.Extra["speedup"], workers, par.NumCPU, o.minSpeedup, spread(m))
			} else {
				info = append(info, fmt.Sprintf("%s: %.2fx speedup at %.0f workers on %d CPUs (digests match)",
					what, m.Extra["speedup"], workers, par.NumCPU))
			}
		}
		gateSpeedup("parallel/speedup", "point fan-out")
		gateSpeedup("parallel/sharded_speedup", "sharded engine")
	}

	if want("durability") {
		dur, err := benchjson.ReadFile(filepath.Join(o.current, "BENCH_durability.json"))
		if err != nil {
			return nil, nil, err
		}
		ov, ok := dur.Metric("durability/overhead")
		if !ok {
			fail("BENCH_durability.json: missing durability/overhead metric")
		} else if ov.Extra["within_budget"] != 1 {
			fail("durable ingest overhead %.1f%% of the in-memory baseline; budget %.0f%%%s",
				ov.Extra["overhead_frac"]*100, ov.Extra["budget_frac"]*100, spread(ov))
		} else {
			info = append(info, fmt.Sprintf("durability: group-committed WAL ingest within %.1f%% of in-memory (budget %.0f%%)",
				ov.Extra["overhead_frac"]*100, ov.Extra["budget_frac"]*100))
		}
	}

	return failures, info, nil
}

func main() {
	var o options
	flag.StringVar(&o.baseline, "baseline", "bench/baseline", "directory with baseline BENCH_*.json")
	flag.StringVar(&o.current, "current", ".", "directory with freshly generated BENCH_*.json")
	flag.StringVar(&o.suite, "suite", "all", "which suite to gate (all, hotpath, parallel, durability)")
	flag.Float64Var(&o.speedTol, "speed-tolerance", 0.25, "max fractional events/sec drop vs baseline")
	flag.Float64Var(&o.minSpeedup, "min-speedup", 1.5, "min parallel speedup (enforced only with >=4 workers on >=4 CPUs)")
	flag.Parse()

	switch o.suite {
	case "all", "hotpath", "parallel", "durability":
	default:
		fmt.Fprintf(os.Stderr, "benchdiff: unknown -suite %q (want all, hotpath, parallel or durability)\n", o.suite)
		os.Exit(2)
	}

	failures, info, err := compare(o)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(1)
	}
	for _, line := range info {
		fmt.Println(line)
	}
	if len(failures) > 0 {
		for _, f := range failures {
			fmt.Fprintln(os.Stderr, "REGRESSION:", f)
		}
		os.Exit(1)
	}
}
