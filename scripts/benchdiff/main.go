// Command benchdiff compares freshly generated BENCH_*.json artifacts
// against the checked-in baseline (bench/baseline/) and exits non-zero on
// a hot-path regression. CI runs it after `make bench-json`.
//
// Policy:
//   - allocs/op is machine-independent: any increase over baseline fails,
//     and metrics under hotpath/ must be exactly zero — the simulated
//     pipeline's per-event paths are pinned alloc-free, so even a
//     baseline that drifted up would not excuse a non-zero value.
//   - hot-path events/sec may drift with the runner; only a drop beyond
//     -speed-tolerance (default 25%) fails.
//   - the parallel report must attest digest identity (parallelism never
//     changes results) and, on machines with enough cores, a speedup of
//     at least -min-speedup over the sequential run.
//   - the durability report must attest that group-committed WAL ingest
//     stays within its overhead budget of the in-memory baseline (the
//     comparison is machine-relative, so no baseline file is needed).
//
// Usage:
//
//	benchdiff [-baseline bench/baseline] [-current .]
//	          [-speed-tolerance 0.25] [-min-speedup 1.5]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"netseer/internal/benchjson"
)

// options parameterizes one comparison run (mirrors the flags).
type options struct {
	baseline   string  // directory with baseline BENCH_*.json
	current    string  // directory with freshly generated BENCH_*.json
	speedTol   float64 // max fractional events/sec drop vs baseline
	minSpeedup float64 // min parallel speedup (>=4 workers on >=4 CPUs)
}

// compare applies the gating policy. failures are regressions (any means
// the build must fail), info are human-oriented progress lines, err is a
// fatal setup problem (missing or unreadable artifact).
func compare(o options) (failures, info []string, err error) {
	fail := func(format string, args ...any) {
		failures = append(failures, fmt.Sprintf(format, args...))
	}

	base, err := benchjson.ReadFile(filepath.Join(o.baseline, "BENCH_hotpath.json"))
	if err != nil {
		return nil, nil, err
	}
	cur, err := benchjson.ReadFile(filepath.Join(o.current, "BENCH_hotpath.json"))
	if err != nil {
		return nil, nil, err
	}
	for _, bm := range base.Metrics {
		cm, ok := cur.Metric(bm.Name)
		if !ok {
			fail("%s: present in baseline but missing from current run", bm.Name)
			continue
		}
		if cm.AllocsPerOp > bm.AllocsPerOp {
			fail("%s: allocs/op grew %v -> %v (any increase fails)", bm.Name, bm.AllocsPerOp, cm.AllocsPerOp)
		}
		if strings.HasPrefix(bm.Name, "hotpath/") && cm.AllocsPerOp != 0 {
			fail("%s: allocs/op = %v; hotpath/ metrics must be exactly 0", bm.Name, cm.AllocsPerOp)
		}
		if bm.EventsPerSec > 0 && cm.EventsPerSec < bm.EventsPerSec*(1-o.speedTol) {
			fail("%s: events/sec dropped %.3g -> %.3g (tolerance %.0f%%)",
				bm.Name, bm.EventsPerSec, cm.EventsPerSec, o.speedTol*100)
		}
	}

	par, err := benchjson.ReadFile(filepath.Join(o.current, "BENCH_parallel.json"))
	if err != nil {
		return nil, nil, err
	}
	sp, ok := par.Metric("parallel/speedup")
	if !ok {
		fail("BENCH_parallel.json: missing parallel/speedup metric")
	} else {
		if sp.Extra["digests_match"] != 1 {
			fail("parallel run is not bit-identical to sequential (digests_match=%v)", sp.Extra["digests_match"])
		}
		workers := sp.Extra["workers"]
		if workers >= 4 && par.NumCPU >= 4 && sp.Extra["speedup"] < o.minSpeedup {
			fail("parallel speedup %.2fx at %.0f workers on %d CPUs; need >= %.2fx",
				sp.Extra["speedup"], workers, par.NumCPU, o.minSpeedup)
		} else {
			info = append(info, fmt.Sprintf("parallel: %.2fx speedup at %.0f workers on %d CPUs (digests match)",
				sp.Extra["speedup"], workers, par.NumCPU))
		}
	}

	dur, err := benchjson.ReadFile(filepath.Join(o.current, "BENCH_durability.json"))
	if err != nil {
		return nil, nil, err
	}
	ov, ok := dur.Metric("durability/overhead")
	if !ok {
		fail("BENCH_durability.json: missing durability/overhead metric")
	} else if ov.Extra["within_budget"] != 1 {
		fail("durable ingest overhead %.1f%% of the in-memory baseline; budget %.0f%%",
			ov.Extra["overhead_frac"]*100, ov.Extra["budget_frac"]*100)
	} else {
		info = append(info, fmt.Sprintf("durability: group-committed WAL ingest within %.1f%% of in-memory (budget %.0f%%)",
			ov.Extra["overhead_frac"]*100, ov.Extra["budget_frac"]*100))
	}

	if len(failures) == 0 {
		info = append(info, fmt.Sprintf("benchdiff: %d hot-path metrics within budget (allocs/op: no increase; events/sec tolerance %.0f%%)",
			len(base.Metrics), o.speedTol*100))
	}
	return failures, info, nil
}

func main() {
	var o options
	flag.StringVar(&o.baseline, "baseline", "bench/baseline", "directory with baseline BENCH_*.json")
	flag.StringVar(&o.current, "current", ".", "directory with freshly generated BENCH_*.json")
	flag.Float64Var(&o.speedTol, "speed-tolerance", 0.25, "max fractional events/sec drop vs baseline")
	flag.Float64Var(&o.minSpeedup, "min-speedup", 1.5, "min parallel speedup (enforced only with >=4 workers on >=4 CPUs)")
	flag.Parse()

	failures, info, err := compare(o)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(1)
	}
	for _, line := range info {
		fmt.Println(line)
	}
	if len(failures) > 0 {
		for _, f := range failures {
			fmt.Fprintln(os.Stderr, "REGRESSION:", f)
		}
		os.Exit(1)
	}
}
