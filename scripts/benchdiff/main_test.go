package main

import (
	"path/filepath"
	"strings"
	"testing"

	"netseer/internal/benchjson"
)

// writeReport writes a BENCH_*.json fixture into dir.
func writeReport(t *testing.T, dir, file string, r *benchjson.Report) {
	t.Helper()
	if err := r.WriteFile(filepath.Join(dir, file)); err != nil {
		t.Fatal(err)
	}
}

// hotpath builds a single-metric hot-path report.
func hotpath(allocs, eps float64) *benchjson.Report {
	r := benchjson.NewReport("hotpath")
	r.Add(benchjson.Metric{Name: "core/pipeline", AllocsPerOp: allocs, EventsPerSec: eps})
	return r
}

// parallelReport builds a parallel report carrying both speedup
// attestations (point fan-out and sharded engine) with the same values.
func parallelReport(numCPU int, workers, speedup, digestsMatch float64) *benchjson.Report {
	r := benchjson.NewReport("parallel")
	r.NumCPU = numCPU
	r.Add(benchjson.Metric{Name: "parallel/speedup", Extra: map[string]float64{
		"workers":       workers,
		"speedup":       speedup,
		"digests_match": digestsMatch,
	}})
	r.Add(benchjson.Metric{Name: "parallel/sharded_speedup", Extra: map[string]float64{
		"workers":       workers,
		"shards":        21,
		"speedup":       speedup,
		"digests_match": digestsMatch,
	}})
	return r
}

// shardedBroken returns a parallel report whose point fan-out passes but
// whose sharded attestation carries the given speedup/digest values.
func shardedBroken(numCPU int, workers, speedup, digestsMatch float64) *benchjson.Report {
	r := parallelReport(numCPU, workers, 2.0, 1)
	for i := range r.Metrics {
		if r.Metrics[i].Name == "parallel/sharded_speedup" {
			r.Metrics[i].Extra["speedup"] = speedup
			r.Metrics[i].Extra["digests_match"] = digestsMatch
		}
	}
	return r
}

// durabilityReport builds a durability report with the given attestation.
func durabilityReport(overhead, within float64) *benchjson.Report {
	r := benchjson.NewReport("durability")
	r.Add(benchjson.Metric{Name: "durability/overhead", Extra: map[string]float64{
		"overhead_frac": overhead,
		"budget_frac":   0.25,
		"within_budget": within,
	}})
	return r
}

// fixture lays out a baseline dir and a current dir, returning both. A
// passing durability artifact is written unless an explicit one (possibly
// nil, meaning none) is given.
func fixture(t *testing.T, base, cur, par *benchjson.Report, dur ...*benchjson.Report) options {
	t.Helper()
	baseDir, curDir := t.TempDir(), t.TempDir()
	if base != nil {
		writeReport(t, baseDir, "BENCH_hotpath.json", base)
	}
	if cur != nil {
		writeReport(t, curDir, "BENCH_hotpath.json", cur)
	}
	if par != nil {
		writeReport(t, curDir, "BENCH_parallel.json", par)
	}
	d := durabilityReport(0.12, 1)
	if len(dur) > 0 {
		d = dur[0]
	}
	if d != nil {
		writeReport(t, curDir, "BENCH_durability.json", d)
	}
	return options{baseline: baseDir, current: curDir, suite: "all", speedTol: 0.25, minSpeedup: 1.5}
}

func mustCompare(t *testing.T, o options) []string {
	t.Helper()
	failures, _, err := compare(o)
	if err != nil {
		t.Fatalf("compare: %v", err)
	}
	return failures
}

func wantFailure(t *testing.T, failures []string, substr string) {
	t.Helper()
	for _, f := range failures {
		if strings.Contains(f, substr) {
			return
		}
	}
	t.Errorf("no failure mentions %q; got %q", substr, failures)
}

func TestComparePassesWithinBudget(t *testing.T) {
	o := fixture(t, hotpath(3, 1e8), hotpath(3, 0.9e8), parallelReport(8, 4, 2.0, 1))
	failures, info, err := compare(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(failures) != 0 {
		t.Errorf("unexpected failures: %q", failures)
	}
	joined := strings.Join(info, "\n")
	if !strings.Contains(joined, "within budget") || !strings.Contains(joined, "2.00x speedup") {
		t.Errorf("info missing summary lines: %q", info)
	}
}

func TestCompareFailsOnAllocsIncrease(t *testing.T) {
	o := fixture(t, hotpath(3, 1e8), hotpath(4, 1e8), parallelReport(8, 4, 2.0, 1))
	wantFailure(t, mustCompare(t, o), "allocs/op grew")
}

// hotpathNamed builds a report whose single metric carries the hotpath/
// prefix the zero-alloc hard rule is scoped to.
func hotpathNamed(allocs, eps float64) *benchjson.Report {
	r := benchjson.NewReport("hotpath")
	r.Add(benchjson.Metric{Name: "hotpath/groupcache_ingest", AllocsPerOp: allocs, EventsPerSec: eps})
	return r
}

func TestCompareRequiresZeroAllocsOnHotpath(t *testing.T) {
	// Even a baseline that drifted to 1 alloc/op does not excuse the
	// current run: hotpath/ metrics must be exactly zero.
	o := fixture(t, hotpathNamed(1, 1e8), hotpathNamed(1, 1e8), parallelReport(8, 4, 2.0, 1))
	wantFailure(t, mustCompare(t, o), "must be exactly 0")

	// Zero allocs passes.
	o = fixture(t, hotpathNamed(0, 1e8), hotpathNamed(0, 1e8), parallelReport(8, 4, 2.0, 1))
	if failures := mustCompare(t, o); len(failures) != 0 {
		t.Errorf("zero-alloc hotpath flagged: %q", failures)
	}

	// The hard rule is scoped: non-hotpath metrics may allocate (the
	// no-increase rule still applies to them).
	o = fixture(t, hotpath(3, 1e8), hotpath(3, 1e8), parallelReport(8, 4, 2.0, 1))
	if failures := mustCompare(t, o); len(failures) != 0 {
		t.Errorf("non-hotpath metric hit the zero-alloc rule: %q", failures)
	}
}

func TestCompareFailsOnThroughputDropBeyondTolerance(t *testing.T) {
	// 40% drop against a 25% tolerance.
	o := fixture(t, hotpath(3, 1e8), hotpath(3, 0.6e8), parallelReport(8, 4, 2.0, 1))
	wantFailure(t, mustCompare(t, o), "events/sec dropped")
}

func TestCompareToleratesThroughputDropWithinTolerance(t *testing.T) {
	o := fixture(t, hotpath(3, 1e8), hotpath(3, 0.8e8), parallelReport(8, 4, 2.0, 1))
	if failures := mustCompare(t, o); len(failures) != 0 {
		t.Errorf("20%% drop within 25%% tolerance should pass; got %q", failures)
	}
}

func TestCompareFailsOnMetricMissingFromCurrent(t *testing.T) {
	cur := benchjson.NewReport("hotpath") // empty: baseline metric vanished
	o := fixture(t, hotpath(3, 1e8), cur, parallelReport(8, 4, 2.0, 1))
	wantFailure(t, mustCompare(t, o), "missing from current run")
}

func TestCompareFailsOnDigestMismatch(t *testing.T) {
	o := fixture(t, hotpath(3, 1e8), hotpath(3, 1e8), parallelReport(8, 4, 2.0, 0))
	wantFailure(t, mustCompare(t, o), "not bit-identical")
}

func TestCompareFailsOnMissingSpeedupMetric(t *testing.T) {
	par := benchjson.NewReport("parallel")
	par.NumCPU = 8
	o := fixture(t, hotpath(3, 1e8), hotpath(3, 1e8), par)
	wantFailure(t, mustCompare(t, o), "missing parallel/speedup")
}

func TestCompareEnforcesSpeedupOnlyWithEnoughCPUs(t *testing.T) {
	// 4 workers on 8 CPUs at 1.1x: below the 1.5x floor -> both gates fail.
	o := fixture(t, hotpath(3, 1e8), hotpath(3, 1e8), parallelReport(8, 4, 1.1, 1))
	failures := mustCompare(t, o)
	wantFailure(t, failures, "point fan-out speedup")
	wantFailure(t, failures, "sharded engine speedup")

	// Same speedup on a 2-CPU machine: the gate must not fire.
	o = fixture(t, hotpath(3, 1e8), hotpath(3, 1e8), parallelReport(2, 4, 1.1, 1))
	if failures := mustCompare(t, o); len(failures) != 0 {
		t.Errorf("speedup gate fired on a 2-CPU machine: %q", failures)
	}

	// And with fewer than 4 workers, regardless of CPUs.
	o = fixture(t, hotpath(3, 1e8), hotpath(3, 1e8), parallelReport(8, 2, 1.1, 1))
	if failures := mustCompare(t, o); len(failures) != 0 {
		t.Errorf("speedup gate fired with 2 workers: %q", failures)
	}
}

func TestCompareReportsMissingBaseline(t *testing.T) {
	o := fixture(t, nil, hotpath(3, 1e8), parallelReport(8, 4, 2.0, 1))
	if _, _, err := compare(o); err == nil {
		t.Fatal("compare succeeded with no baseline artifact")
	}
}

func TestCompareReportsMissingCurrentArtifacts(t *testing.T) {
	// Current hot-path artifact absent.
	o := fixture(t, hotpath(3, 1e8), nil, parallelReport(8, 4, 2.0, 1))
	if _, _, err := compare(o); err == nil {
		t.Fatal("compare succeeded with no current hot-path artifact")
	}

	// Parallel artifact absent.
	o = fixture(t, hotpath(3, 1e8), hotpath(3, 1e8), nil)
	if _, _, err := compare(o); err == nil {
		t.Fatal("compare succeeded with no parallel artifact")
	}

	// Durability artifact absent.
	o = fixture(t, hotpath(3, 1e8), hotpath(3, 1e8), parallelReport(8, 4, 2.0, 1), nil)
	if _, _, err := compare(o); err == nil {
		t.Fatal("compare succeeded with no durability artifact")
	}
}

func TestCompareFailsOnDurabilityOverBudget(t *testing.T) {
	o := fixture(t, hotpath(3, 1e8), hotpath(3, 1e8), parallelReport(8, 4, 2.0, 1),
		durabilityReport(0.4, 0))
	wantFailure(t, mustCompare(t, o), "durable ingest overhead")
}

func TestCompareFailsOnMissingDurabilityMetric(t *testing.T) {
	o := fixture(t, hotpath(3, 1e8), hotpath(3, 1e8), parallelReport(8, 4, 2.0, 1),
		benchjson.NewReport("durability"))
	wantFailure(t, mustCompare(t, o), "missing durability/overhead")
}

func TestCompareFailsOnShardedDigestMismatch(t *testing.T) {
	// Point fan-out attests, sharded engine does not: the sharded gate
	// must fail independently.
	o := fixture(t, hotpath(3, 1e8), hotpath(3, 1e8), shardedBroken(8, 4, 2.0, 0))
	wantFailure(t, mustCompare(t, o), "sharded engine is not bit-identical")
}

func TestCompareFailsOnMissingShardedSpeedup(t *testing.T) {
	par := benchjson.NewReport("parallel")
	par.NumCPU = 8
	par.Add(benchjson.Metric{Name: "parallel/speedup", Extra: map[string]float64{
		"workers": 4, "speedup": 2.0, "digests_match": 1,
	}})
	o := fixture(t, hotpath(3, 1e8), hotpath(3, 1e8), par)
	wantFailure(t, mustCompare(t, o), "missing parallel/sharded_speedup")
}

func TestCompareShardedSpeedupGateRespectsCPUFloor(t *testing.T) {
	// 1.1x sharded speedup on a 2-CPU box or with 2 workers: no failure.
	for _, o := range []options{
		fixture(t, hotpath(3, 1e8), hotpath(3, 1e8), shardedBroken(2, 4, 1.1, 1)),
		fixture(t, hotpath(3, 1e8), hotpath(3, 1e8), shardedBroken(8, 2, 1.1, 1)),
	} {
		if failures := mustCompare(t, o); len(failures) != 0 {
			t.Errorf("sharded speedup gate fired below the 4-worker/4-CPU floor: %q", failures)
		}
	}
}

func TestCompareSuiteFiltersArtifacts(t *testing.T) {
	// -suite hotpath must not read parallel/durability artifacts at all:
	// the fixture's current dir has neither, yet hotpath-only passes.
	baseDir, curDir := t.TempDir(), t.TempDir()
	writeReport(t, baseDir, "BENCH_hotpath.json", hotpath(3, 1e8))
	writeReport(t, curDir, "BENCH_hotpath.json", hotpath(3, 1e8))
	o := options{baseline: baseDir, current: curDir, suite: "hotpath", speedTol: 0.25, minSpeedup: 1.5}
	failures, _, err := compare(o)
	if err != nil || len(failures) != 0 {
		t.Fatalf("suite=hotpath with only hotpath artifacts: err=%v failures=%q", err, failures)
	}

	// Conversely -suite parallel never opens the (absent) hotpath files.
	writeReport(t, curDir, "BENCH_parallel.json", parallelReport(8, 4, 2.0, 1))
	o = options{baseline: t.TempDir(), current: curDir, suite: "parallel", speedTol: 0.25, minSpeedup: 1.5}
	failures, _, err = compare(o)
	if err != nil || len(failures) != 0 {
		t.Fatalf("suite=parallel with no hotpath baseline: err=%v failures=%q", err, failures)
	}
}

func TestCompareFailurePrintsPerRunSpread(t *testing.T) {
	// A best-of-3 metric that regressed: the failure message must carry
	// the per-run spread so flake is distinguishable from regression.
	cur := benchjson.NewReport("hotpath")
	cur.Add(benchjson.Metric{Name: "core/pipeline", AllocsPerOp: 3, EventsPerSec: 0.5e8,
		Extra: map[string]float64{"runs": 3, "spread_min": 0.4e8, "spread_max": 0.55e8}})
	o := fixture(t, hotpath(3, 1e8), cur, parallelReport(8, 4, 2.0, 1))
	failures := mustCompare(t, o)
	wantFailure(t, failures, "events/sec dropped")
	wantFailure(t, failures, "best of 3 runs")
	wantFailure(t, failures, "per-run spread")
}
