module netseer

go 1.22
