package netseer

// Benchmark harness: one benchmark per table/figure of the paper's
// evaluation (§5). Each benchmark regenerates its figure at a reduced but
// representative scale and reports the figure's headline quantities as
// custom benchmark metrics, so `go test -bench=.` reprints the paper's
// series. Full-scale regeneration lives in cmd/repro.

import (
	"testing"
	"time"

	"netseer/internal/experiments"
	"netseer/internal/fpelim"
	"netseer/internal/resources"
	"netseer/internal/sim"
	"netseer/internal/workload"
)

func benchBase() experiments.RunConfig {
	return experiments.RunConfig{
		Window: 2 * sim.Millisecond,
		Seed:   1,
		Load:   0.70,
		Dist:   workload.WEB,
	}
}

// BenchmarkFig7Resources regenerates the PDP resource accounting.
func BenchmarkFig7Resources(b *testing.B) {
	var u resources.Usage
	for i := 0; i < b.N; i++ {
		u = resources.Estimate(resources.Defaults())
	}
	b.ReportMetric(u.Total(resources.StatefulALU)*100, "statefulALU_%")
	b.ReportMetric(u.Total(resources.SRAM)*100, "SRAM_%")
}

// BenchmarkFig8aCaseStudies regenerates the five NPA case studies.
func BenchmarkFig8aCaseStudies(b *testing.B) {
	located := 0
	var worst sim.Time
	for i := 0; i < b.N; i++ {
		located = 0
		worst = 0
		for _, r := range experiments.Fig8aCaseStudies(uint64(i + 1)) {
			if r.Located {
				located++
			}
			if r.DetectLatency > worst {
				worst = r.DetectLatency
			}
		}
	}
	b.ReportMetric(float64(located), "cases_located")
	b.ReportMetric(float64(worst)/1e6, "worst_detect_ms")
}

// BenchmarkFig8bSLAViolations regenerates the slow-RPC attribution study.
func BenchmarkFig8bSLAViolations(b *testing.B) {
	var res *experiments.SLAResult
	for i := 0; i < b.N; i++ {
		res = experiments.Fig8bSLA(experiments.SLAConfig{Seed: uint64(i + 3), Windows: 16})
	}
	b.ReportMetric(res.Explained["host"]*100, "host_explained_%")
	b.ReportMetric(res.Explained["host+pingmesh"]*100, "pingmesh_explained_%")
	b.ReportMetric(res.Explained["host+netseer"]*100, "netseer_explained_%")
}

// BenchmarkFig9EventCoverage regenerates per-event-type coverage.
func BenchmarkFig9EventCoverage(b *testing.B) {
	var r *experiments.CoverageResult
	for i := 0; i < b.N; i++ {
		r = experiments.Fig9EventCoverage(benchBase())
	}
	b.ReportMetric(r.Ratio[experiments.ClassPipeline]["netseer"]*100, "netseer_pipeline_%")
	b.ReportMetric(r.Ratio[experiments.ClassInterSwitch]["netseer"]*100, "netseer_interswitch_%")
	b.ReportMetric(r.Ratio[experiments.ClassPipeline]["everflow"]*100, "everflow_pipeline_%")
	b.ReportMetric(r.Ratio[experiments.ClassMMUDrop]["sampling-1:1000"]*100, "sampling1000_mmu_%")
}

// BenchmarkFig10CongestionCoverage regenerates congestion coverage across
// the five traffic distributions.
func BenchmarkFig10CongestionCoverage(b *testing.B) {
	var results []*experiments.CoverageResult
	for i := 0; i < b.N; i++ {
		results = experiments.Fig10CongestionCoverage(benchBase(), workload.All)
	}
	var nsMin, sampMax float64 = 1, 0
	for _, r := range results {
		if r.TruthCount[experiments.ClassCongestion] == 0 {
			continue // a short window may produce no congestion for a light workload
		}
		if v := r.Ratio[experiments.ClassCongestion]["netseer"]; v < nsMin {
			nsMin = v
		}
		if v := r.Ratio[experiments.ClassCongestion]["sampling-1:10"]; v > sampMax {
			sampMax = v
		}
	}
	b.ReportMetric(nsMin*100, "netseer_min_%")
	b.ReportMetric(sampMax*100, "sampling10_max_%")
}

// BenchmarkFig11BandwidthOverhead regenerates the monitoring-overhead
// comparison.
func BenchmarkFig11BandwidthOverhead(b *testing.B) {
	var results []*experiments.OverheadResult
	for i := 0; i < b.N; i++ {
		results = experiments.Fig11BandwidthOverhead(benchBase(), []*workload.Distribution{workload.WEB, workload.CACHE})
	}
	r := results[0]
	b.ReportMetric(r.Overhead["netseer"]*1e4, "netseer_bp") // basis points
	b.ReportMetric(r.Overhead["netsight"]*100, "netsight_%")
	b.ReportMetric(r.Overhead["netsight"]/r.Overhead["netseer"], "ratio_x")
}

// BenchmarkFig12BatchingCapacity regenerates the CEBP throughput sweep.
func BenchmarkFig12BatchingCapacity(b *testing.B) {
	var points []experiments.BatchingPoint
	for i := 0; i < b.N; i++ {
		points = experiments.Fig12Batching([]int{1, 10, 50, 70})
	}
	b.ReportMetric(points[2].Meps, "batch50_Meps")
	b.ReportMetric(points[2].Gbps, "batch50_Gbps")
}

// BenchmarkFig13aEventPacketRatio regenerates the event-packet-ratio
// panel.
func BenchmarkFig13aEventPacketRatio(b *testing.B) {
	var r *experiments.StepResult
	for i := 0; i < b.N; i++ {
		r = experiments.Fig13PerStep(benchBase())
	}
	b.ReportMetric(r.TotalEventRatio*100, "event_pkt_%")
}

// BenchmarkFig13bPerStepReduction regenerates the per-step reduction
// panel.
func BenchmarkFig13bPerStepReduction(b *testing.B) {
	var r *experiments.StepResult
	for i := 0; i < b.N; i++ {
		r = experiments.Fig13PerStep(benchBase())
	}
	b.ReportMetric(r.Step2Reduction*100, "dedup_reduction_%")
	b.ReportMetric(r.Step3Reduction*100, "extract_reduction_%")
	b.ReportMetric(r.OverallRatio*1e4, "overall_bp")
}

// BenchmarkFig14aPCIeCapacity measures the CPU/PCIe channel throughput at
// 1 and 2 cores.
func BenchmarkFig14aPCIeCapacity(b *testing.B) {
	var points []experiments.PCIePoint
	for i := 0; i < b.N; i++ {
		points = experiments.Fig14aPCIe([]int{50}, []int{1, 2}, 30*time.Millisecond)
	}
	b.ReportMetric(points[0].Gbps, "core1_Gbps")
	b.ReportMetric(points[1].Gbps, "core2_Gbps")
}

// BenchmarkFig14bCPUCapacity measures FP-elimination capacity vs flow
// count and the pre-hash offload speedup.
func BenchmarkFig14bCPUCapacity(b *testing.B) {
	var pre, cpu []experiments.CPUPoint
	for i := 0; i < b.N; i++ {
		pre = experiments.Fig14bCPU([]int{1 << 10, 1 << 18}, 2, fpelim.PreHashed, 30*time.Millisecond)
		cpu = experiments.Fig14bCPU([]int{1 << 10}, 2, fpelim.HashOnCPU, 30*time.Millisecond)
	}
	b.ReportMetric(pre[0].Meps, "flows1K_Meps")
	b.ReportMetric(pre[1].Meps, "flows256K_Meps")
	b.ReportMetric(pre[0].Meps/cpu[0].Meps, "prehash_speedup_x")
}

// BenchmarkFig15aRingSizing finds the minimal ring size for two packet
// sizes by simulation.
func BenchmarkFig15aRingSizing(b *testing.B) {
	var points []experiments.RingSizingPoint
	for i := 0; i < b.N; i++ {
		points = experiments.Fig15aRingSizing([]int{256, 1024})
	}
	b.ReportMetric(float64(points[1].MinSlots), "slots_1024B")
	b.ReportMetric(float64(points[0].MinSlots), "slots_256B")
}

// BenchmarkFig15bSRAM computes the consecutive-drop SRAM budget.
func BenchmarkFig15bSRAM(b *testing.B) {
	var points []experiments.SRAMPoint
	for i := 0; i < b.N; i++ {
		points = experiments.Fig15bSRAM([]int{1000}, []int{1024}, 64)
	}
	b.ReportMetric(float64(points[0].SRAMBytes)/1024, "SRAM_KB")
}

// BenchmarkAblationDedup compares group caching against the Bloom-filter
// strawman (design-choice ablation from DESIGN.md).
func BenchmarkAblationDedup(b *testing.B) {
	// The functional comparison (zero FN vs FN-prone) is asserted in
	// groupcache's tests; here we compare per-packet cost end to end.
	b.Run("groupcache", func(b *testing.B) {
		cfg := benchBase()
		cfg.Window = sim.Millisecond
		for i := 0; i < b.N; i++ {
			experiments.Fig13PerStep(cfg)
		}
	})
}

// BenchmarkEndToEndTestbed measures raw simulation throughput of the full
// monitored testbed (packets simulated per wall second).
func BenchmarkEndToEndTestbed(b *testing.B) {
	var packets uint64
	start := time.Now()
	for i := 0; i < b.N; i++ {
		cfg := benchBase()
		cfg.NetSeer = true
		tb := experiments.NewTestbed(cfg)
		tb.Run()
		packets += tb.NetSeerStats().RawPackets
	}
	b.ReportMetric(float64(packets)/time.Since(start).Seconds(), "sim_pkts/s")
}
