// Package netseer is the public facade of the NetSeer reproduction — a
// flow event telemetry (FET) system in the spirit of "Flow Event
// Telemetry on Programmable Data Plane" (SIGCOMM 2020).
//
// The package wires the building blocks under internal/ into a
// ready-to-use monitored network: build a topology, attach hosts, enable
// NetSeer on every switch, drive traffic, inject faults, and query the
// resulting flow events:
//
//	net := netseer.NewNetwork(netseer.NetworkConfig{Seed: 1})
//	a, b := net.Host("h0-0-0"), net.Host("h1-1-7")
//	net.Run(5 * netseer.Millisecond)
//	events := net.Events(netseer.Query{Flow: &flow})
//
// The full evaluation harness (every table and figure of the paper's §5)
// lives in internal/experiments and is exposed through cmd/repro and the
// package-level benchmarks in bench_test.go.
package netseer

import (
	"fmt"

	"netseer/internal/collector"
	"netseer/internal/core"
	"netseer/internal/dataplane"
	"netseer/internal/fevent"
	"netseer/internal/host"
	"netseer/internal/link"
	"netseer/internal/nic"
	"netseer/internal/pkt"
	"netseer/internal/sim"
	"netseer/internal/topo"
	"netseer/internal/workload"
)

// Re-exported time units for configuration convenience.
const (
	Nanosecond  = sim.Nanosecond
	Microsecond = sim.Microsecond
	Millisecond = sim.Millisecond
	Second      = sim.Second
)

// Time is a simulated-time instant/duration in nanoseconds.
type Time = sim.Time

// FlowKey identifies a flow by its IPv4 5-tuple.
type FlowKey = pkt.FlowKey

// Event is one reported flow event.
type Event = fevent.Event

// Event types.
const (
	EventDrop        = fevent.TypeDrop
	EventCongestion  = fevent.TypeCongestion
	EventPathChange  = fevent.TypePathChange
	EventPause       = fevent.TypePause
	EventHeavyHitter = fevent.TypeHeavyHitter
	EventTopKChurn   = fevent.TypeTopKChurn
	EventAggSpike    = fevent.TypeAggSpike
)

// Query filters stored events.
type Query = collector.Filter

// IP composes an IPv4 address from dotted-quad octets.
func IP(a, b, c, d byte) uint32 { return pkt.IP(a, b, c, d) }

// Topology selects the fabric shape.
type Topology int

// Topologies.
const (
	// TopoTestbed is the paper's evaluation fabric: 10 switches in a
	// 4-ary fat-tree arrangement with 32 × 25 Gb/s hosts.
	TopoTestbed Topology = iota
	// TopoLine2 is a minimal 2-switch line with one host on each end.
	TopoLine2
	// TopoFatTreeK4 is a full 4-ary fat-tree (20 switches, 16 hosts).
	TopoFatTreeK4
)

// NetworkConfig parameterizes NewNetwork. Zero values take sensible
// defaults.
type NetworkConfig struct {
	Topology Topology
	Seed     uint64
	// Switch is the data-plane configuration shared by all switches.
	Switch dataplane.Config
	// NetSeer configures the telemetry; DisableNetSeer turns it off.
	NetSeer        core.Config
	DisableNetSeer bool
}

// Network is a fully assembled, monitored, simulated network.
type Network struct {
	cfg    NetworkConfig
	sim    *sim.Simulator
	topo   *topo.Topology
	routes *topo.Routes
	fab    *dataplane.Fabric
	gt     *dataplane.GroundTruth
	store  *collector.Store
	ns     []*core.NetSeerSwitch
	hosts  map[string]*host.Host
	pktID  uint64
}

// NewNetwork builds the selected topology with hosts on every host node
// and (unless disabled) NetSeer on every switch, reporting to an
// in-process collector.
func NewNetwork(cfg NetworkConfig) *Network {
	s := sim.New()
	var tp *topo.Topology
	switch cfg.Topology {
	case TopoLine2:
		tp = topo.Line(2, 0, 0, 0)
	case TopoFatTreeK4:
		tp = topo.FatTree(topo.FatTreeConfig{K: 4})
	default:
		tp = topo.Testbed()
	}
	routes := topo.BuildRoutes(tp)
	gt := dataplane.NewGroundTruth()
	fab := dataplane.BuildFabric(s, tp, routes, cfg.Switch, gt, cfg.Seed)
	n := &Network{
		cfg: cfg, sim: s, topo: tp, routes: routes, fab: fab, gt: gt,
		store: collector.NewStore(), hosts: make(map[string]*host.Host),
	}
	for _, hn := range tp.Hosts() {
		h := host.Attach(s, fab, hn, nic.Config{}, &n.pktID)
		h.Handle(workload.DataPort, func(*pkt.Packet) {})
		n.hosts[hn.Name] = h
	}
	if !cfg.DisableNetSeer {
		nsCfg := cfg.NetSeer
		if nsCfg.CongestionThreshold <= 0 {
			nsCfg.CongestionThreshold = fab.SwitchByID[0].Config().CongestionThreshold
		}
		fab.EachSwitch(func(sw *dataplane.Switch) {
			n.ns = append(n.ns, core.Attach(sw, nsCfg, n.store))
		})
	}
	return n
}

// Host returns a host endpoint by topology name (e.g. "h0-0-0", "hA").
func (n *Network) Host(name string) *host.Host {
	h, ok := n.hosts[name]
	if !ok {
		panic(fmt.Sprintf("netseer: unknown host %q", name))
	}
	return h
}

// Hosts returns all hosts in topology order.
func (n *Network) Hosts() []*host.Host {
	var out []*host.Host
	for _, hn := range n.topo.Hosts() {
		out = append(out, n.hosts[hn.Name])
	}
	return out
}

// Switch returns a switch by topology name (e.g. "core0", "edge0-1").
func (n *Network) Switch(name string) *dataplane.Switch {
	node, ok := n.topo.NodeByName(name)
	if !ok {
		panic(fmt.Sprintf("netseer: unknown switch %q", name))
	}
	return n.fab.Switches[node.ID]
}

// Link returns the link between two named nodes (switch or host names).
func (n *Network) Link(a, b string) *link.Link {
	l := n.fab.LinkBetween(a, b)
	if l == nil {
		panic(fmt.Sprintf("netseer: no link between %q and %q", a, b))
	}
	return l
}

// Sim exposes the simulation clock/scheduler.
func (n *Network) Sim() *sim.Simulator { return n.sim }

// GroundTruth exposes the omniscient event ledger (for verification).
func (n *Network) GroundTruth() *dataplane.GroundTruth { return n.gt }

// Store exposes the in-process collector.
func (n *Network) Store() *collector.Store { return n.store }

// Run advances the simulation to the given absolute time, then flushes
// NetSeer state so all events are queryable. It can be called repeatedly
// with increasing horizons.
func (n *Network) Run(until Time) {
	n.sim.Run(until)
	for _, ns := range n.ns {
		ns.Flush()
	}
}

// Close stops all background machinery (CEBP circulation) and drains the
// simulation; the Network remains queryable.
func (n *Network) Close() {
	for _, ns := range n.ns {
		ns.Flush()
	}
	for _, ns := range n.ns {
		ns.Stop()
	}
	n.sim.RunAll()
	for _, ns := range n.ns {
		ns.Flush()
	}
}

// Events queries the collector.
func (n *Network) Events(q Query) []Event { return n.store.Query(q) }

// SendBurst emits a burst of packets between two hosts (a convenience
// wrapper for examples and quick experiments). It returns the flow key
// used.
func (n *Network) SendBurst(from, to *host.Host, srcPort uint16, packets, size int) FlowKey {
	flow := FlowKey{
		SrcIP: from.Node.IP, DstIP: to.Node.IP,
		SrcPort: srcPort, DstPort: workload.DataPort, Proto: pkt.ProtoTCP,
	}
	from.SendUDP(flow, packets, size, 0)
	return flow
}

// NetSeerStats aggregates the per-switch telemetry statistics.
func (n *Network) NetSeerStats() core.Stats {
	var agg core.Stats
	for _, ns := range n.ns {
		s := ns.Stats()
		agg.RawPackets += s.RawPackets
		agg.RawBytes += s.RawBytes
		agg.EventPackets += s.EventPackets
		agg.EventBytes += s.EventBytes
		agg.DedupReports += s.DedupReports
		agg.ExportedEvents += s.ExportedEvents
		agg.ExportedBytes += s.ExportedBytes
		agg.SuppressedFPs += s.SuppressedFPs
		agg.SeqGapsDetected += s.SeqGapsDetected
		agg.InterSwitchFound += s.InterSwitchFound
	}
	return agg
}
