// Middlebox: the paper's §3.7 monitoring principles on a software load
// balancer sitting bump-in-the-wire between a NIC and a server.
//
// Three things happen and all three surface as flow events:
//
//  1. the wire toward the middlebox silently drops frames — recovered by
//     the upstream NIC's ring buffer (inter-device drop awareness);
//
//  2. the middlebox's processing queue overflows under a burst — reported
//     as local drop events with the victim flow (event-based anomaly
//     detection);
//
//  3. everything lands in one event log via a reliable channel.
//
//     go run ./examples/middlebox
package main

import (
	"fmt"

	"netseer/internal/fevent"
	"netseer/internal/link"
	"netseer/internal/middlebox"
	"netseer/internal/nic"
	"netseer/internal/pkt"
	"netseer/internal/sim"
)

type memSink struct{ events []fevent.Event }

func (m *memSink) Deliver(b *fevent.Batch) { m.events = append(m.events, b.Events...) }

type deferred struct{ dev link.Device }

func (d *deferred) Receive(p *pkt.Packet, port int) {
	if d.dev != nil {
		d.dev.Receive(p, port)
	}
}

func main() {
	s := sim.New()
	sink := &memSink{}
	// Deliberately undersized: 2 Gb/s service, 16 kB queue.
	mb := middlebox.New(s, middlebox.Config{ServiceBps: 2e9, QueueBytes: 16 << 10, SwitchID: 100}, sink)

	aDef, nDef := &deferred{}, &deferred{}
	upLink := link.New(s, link.Endpoint{Dev: aDef, Port: 0}, link.Endpoint{Dev: nDef, Port: 0},
		sim.Microsecond, sim.NewStream(1, "up"))
	sDef, bDef := &deferred{}, &deferred{}
	downLink := link.New(s, link.Endpoint{Dev: sDef, Port: 0}, link.Endpoint{Dev: bDef, Port: 0},
		sim.Microsecond, sim.NewStream(2, "down"))

	var received int
	client := nic.New(s, upLink, true, nic.Config{}, func(*pkt.Packet) {})
	server := nic.New(s, downLink, false, nic.Config{}, func(*pkt.Packet) { received++ })
	aDef.dev = client
	bDef.dev = server
	nDef.dev = mb.Device(middlebox.North)
	sDef.dev = mb.Device(middlebox.South)
	mb.AttachLink(middlebox.North, upLink, false)
	mb.AttachLink(middlebox.South, downLink, true)

	flowA := pkt.FlowKey{SrcIP: pkt.IP(10, 0, 0, 1), DstIP: pkt.IP(10, 0, 1, 1), SrcPort: 1111, DstPort: 80, Proto: pkt.ProtoTCP}
	flowB := pkt.FlowKey{SrcIP: pkt.IP(10, 0, 0, 2), DstIP: pkt.IP(10, 0, 1, 1), SrcPort: 2222, DstPort: 80, Proto: pkt.ProtoTCP}
	send := func(f pkt.FlowKey, n int) {
		for i := 0; i < n; i++ {
			client.Send(&pkt.Packet{ID: uint64(i), Kind: pkt.KindData, Flow: f, WireLen: 1000, TTL: 64})
		}
	}

	// Phase 1: clean traffic.
	send(flowA, 10)
	s.RunAll()

	// Phase 2: the wire to the middlebox goes bad for two frames.
	upLink.InjectLossBurst(true, 2)
	send(flowB, 2) // lost on the wire
	send(flowA, 5) // reveals the gap
	s.RunAll()

	// Phase 3: a burst overloads the middlebox's queue.
	send(flowA, 200)
	s.RunAll()

	fmt.Printf("server received: %d packets; middlebox processed %d, overload-dropped %d\n\n",
		received, mb.Processed, mb.Overloaded)

	fmt.Printf("NIC local log (inter-device drops toward the middlebox): %d entries\n", len(client.Log))
	for _, e := range client.Log {
		fmt.Printf("  %v\n", e.String())
	}
	fmt.Printf("\nmiddlebox event reports: %d\n", len(sink.events))
	byFlow := map[pkt.FlowKey]int{}
	for _, e := range sink.events {
		byFlow[e.Flow]++
	}
	for f, n := range byFlow {
		fmt.Printf("  %v: %d drop events\n", f, n)
	}
	fmt.Println("\nall three §3.7 principles observable: wire-loss recovery, event-based overload, reliable report.")
}
