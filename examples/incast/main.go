// Incast: the paper's case #4 — an unexpected traffic volume congests a
// switch and operators need to know *which flows* to reroute.
//
// Sixteen senders burst simultaneously at one receiver on the paper's
// 10-switch testbed. The receiver's ToR queue overflows; NetSeer's
// MMU-drop and congestion events identify the contributing flows ranked
// by aggregated packet count, which is exactly the evidence the operators
// in the paper lacked.
//
//	go run ./examples/incast
package main

import (
	"fmt"
	"sort"

	"netseer"
	"netseer/internal/fevent"
)

func main() {
	net := netseer.NewNetwork(netseer.NetworkConfig{Seed: 7})
	hosts := net.Hosts()
	receiver := hosts[0]

	// 16 senders × 512 kB simultaneous bursts into one 25 Gb/s host link.
	for i, snd := range hosts[8:24] {
		net.SendBurst(snd, receiver, uint16(20000+i), 512, 1000)
	}

	net.Run(10 * netseer.Millisecond)
	net.Close()

	drops := net.Events(netseer.Query{Type: netseer.EventDrop, DropCode: fevent.DropMMUCongestion})
	congestion := net.Events(netseer.Query{Type: netseer.EventCongestion})
	fmt.Printf("MMU-drop events: %d, congestion events: %d\n\n", len(drops), len(congestion))

	// Rank contributing flows by their final drop counts.
	type contrib struct {
		flow  netseer.FlowKey
		count uint16
	}
	best := map[netseer.FlowKey]uint16{}
	for _, e := range drops {
		if e.Count > best[e.Flow] {
			best[e.Flow] = e.Count
		}
	}
	var ranked []contrib
	for f, c := range best {
		ranked = append(ranked, contrib{f, c})
	}
	sort.Slice(ranked, func(i, j int) bool { return ranked[i].count > ranked[j].count })

	fmt.Println("top flows to reroute (by dropped packets):")
	for i, c := range ranked {
		if i == 8 {
			break
		}
		fmt.Printf("  %2d. %v  dropped=%d\n", i+1, c.flow, c.count)
	}

	// Sanity: every contributor targets the incast receiver.
	for _, c := range ranked {
		if c.flow.DstIP != receiver.Node.IP {
			fmt.Printf("unexpected victim flow: %v\n", c.flow)
		}
	}
	fmt.Printf("\nall %d contributing flows target %s — scheduling decision ready in one query\n",
		len(ranked), receiver.Node.Name)
}
