// Quickstart: the smallest end-to-end NetSeer scenario.
//
// Two switches in a line, one host on each side. We install a faulty
// route (a blackhole) on the first switch, send a burst of traffic, and
// query the collector for the victim flow — the drop events name the
// guilty switch and the exact drop reason within microseconds of the
// fault, which is the paper's core claim.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"netseer"
)

func main() {
	net := netseer.NewNetwork(netseer.NetworkConfig{
		Topology: netseer.TopoLine2,
		Seed:     1,
	})
	src, dst := net.Host("hA"), net.Host("hB")

	// A network update goes wrong: sw0 loses its route to hB.
	net.Switch("sw0").SetRouteOverride(dst.Node.IP, []int{})

	// The application keeps sending.
	flow := net.SendBurst(src, dst, 40000, 20, 724)

	net.Run(netseer.Millisecond)
	net.Close()

	fmt.Printf("flow under investigation: %v\n\n", flow)
	events := net.Events(netseer.Query{Flow: &flow})
	if len(events) == 0 {
		fmt.Println("no events — the network is innocent for this flow")
		return
	}
	fmt.Printf("%d flow events at the collector:\n", len(events))
	for i := range events {
		fmt.Printf("  %v (t=%v)\n", &events[i], events[i].Timestamp)
	}

	stats := net.NetSeerStats()
	fmt.Printf("\ntelemetry cost: %d raw packets watched, %d event packets selected, %d bytes exported\n",
		stats.RawPackets, stats.EventPackets, stats.ExportedBytes)
}
