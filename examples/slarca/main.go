// Slarca ("SLA root-cause analysis"): the paper's Fig. 8(b) study as a
// runnable example — attributing slow storage RPCs to the application,
// the network, or both.
//
// A block-storage-style RPC workload runs across the testbed while fault
// windows inject application stalls (long and short) and network faults
// (loss bursts). Each slow RPC is then classified using three data
// sources of increasing power: host metrics alone, host + Pingmesh, and
// host + NetSeer.
//
//	go run ./examples/slarca
package main

import (
	"fmt"

	"netseer/internal/experiments"
)

func main() {
	fmt.Println("running the storage RPC workload with windowed fault injection…")
	res := experiments.Fig8bSLA(experiments.SLAConfig{
		Pairs:   6,
		Windows: 30,
		Seed:    11,
	})
	fmt.Println()
	fmt.Print(experiments.Fig8bTable(res))
	fmt.Println()
	fmt.Printf("paper's production result: host 40.8%%, host+pingmesh 44%%, host+netseer 97%% explained\n")
	fmt.Printf("this run:                  host %.1f%%, host+pingmesh %.1f%%, host+netseer %.1f%% explained\n",
		res.Explained["host"]*100,
		res.Explained["host+pingmesh"]*100,
		res.Explained["host+netseer"]*100)
}
