// Silentdrop: inter-switch drop detection and flow recovery (§3.3).
//
// A fibre between an aggregation and a core switch starts corrupting
// frames — the hardest fault class in the paper (average 161 minutes to
// locate in production, half of all >3-hour incidents). The upstream
// switch sees nothing; the downstream MAC discards the damaged frames
// silently. NetSeer's consecutive packet IDs + ring buffer recover the
// victim flows' 5-tuples at the upstream switch.
//
//	go run ./examples/silentdrop
package main

import (
	"fmt"

	"netseer"
	"netseer/internal/fevent"
	"netseer/internal/link"
)

func main() {
	net := netseer.NewNetwork(netseer.NetworkConfig{Seed: 3})
	hosts := net.Hosts()

	// Cross-pod traffic from several hosts — some of it will cross the
	// soon-to-be-bad agg0-0 ↔ core0 fibre.
	for i := 0; i < 8; i++ {
		net.SendBurst(hosts[i], hosts[24+i], uint16(30000+i), 200, 724)
	}
	net.Run(2 * netseer.Millisecond)

	// The fibre decays: 5% of frames are corrupted in both directions.
	bad := net.Link("agg0-0", "core0")
	bad.SetFault(true, link.Fault{CorruptProb: 0.05})
	bad.SetFault(false, link.Fault{CorruptProb: 0.05})

	for i := 0; i < 8; i++ {
		net.SendBurst(hosts[i], hosts[24+i], uint16(30000+i), 400, 724)
	}
	net.Run(6 * netseer.Millisecond)
	net.Close()

	events := net.Events(netseer.Query{Type: netseer.EventDrop, DropCode: fevent.DropInterSwitch})
	fmt.Printf("inter-switch drop events recovered: %d\n\n", len(events))
	bySwitch := map[uint16]int{}
	victims := map[netseer.FlowKey]bool{}
	for _, e := range events {
		bySwitch[e.SwitchID]++
		victims[e.Flow] = true
	}
	fmt.Printf("distinct victim flows identified: %d\n", len(victims))
	for sw, n := range bySwitch {
		fmt.Printf("reporting switch %d: %d events (this is an endpoint of the bad fibre)\n", sw, n)
	}

	st := net.NetSeerStats()
	fmt.Printf("\nseq gaps observed downstream: %d; victims recovered from rings: %d\n",
		st.SeqGapsDetected, st.InterSwitchFound)
	fmt.Println("\nwithout NetSeer: SNMP counters show nothing (silent), operators bisect for hours.")
	fmt.Println("with NetSeer: the victim 5-tuples and the guilty link are one query away.")
}
